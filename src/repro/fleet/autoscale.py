"""Queue-depth- and power-cap-driven autoscaling.

The fleet evaluates the autoscaler at a fixed control interval (a
*tick*).  Per pool, the decision is plain threshold control over the
pool's mean backlog per active instance:

- **scale up** — backlog per instance above ``high_watermark`` and the
  pool below ``max_instances``: spawn one instance (cold: a fresh queue
  and residency tracker, so its first batches pay the weight fill);
- **scale down** — backlog per instance below ``low_watermark`` and the
  pool above ``min_instances``: drain the *youngest* active instance
  (highest id — last hired, first retired, which keeps long-lived
  instances warm);
- **power cap** — when the fleet's average electrical power since start
  exceeds ``power_cap_w``, scale-ups are vetoed and one instance drains
  per tick (youngest first, from the highest-power pool) until the fleet
  is back under the cap.

One action per pool per tick plus the hysteresis band between the
watermarks keeps the controller from oscillating; every decision is a
pure function of observable fleet state, so autoscaled runs stay
byte-deterministic.
"""

from __future__ import annotations

import dataclasses

from ..analysis.contracts import require
from .instance import Instance, InstanceState

__all__ = ["AutoscaleConfig", "plan_scaling", "ScaleAction"]


@dataclasses.dataclass(frozen=True)
class AutoscaleConfig:
    """Threshold controller settings for one fleet."""

    interval_s: float = 0.05
    high_watermark: float = 8.0
    low_watermark: float = 1.0
    power_cap_w: float | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "AutoscaleConfig":
        """Contract check: raise ``ValueError`` on any impossible field."""
        require(
            self.interval_s > 0,
            "AutoscaleConfig",
            "interval_s",
            f"must be positive, got {self.interval_s}",
        )
        require(
            self.high_watermark > self.low_watermark >= 0,
            "AutoscaleConfig",
            "high_watermark",
            f"needs high > low >= 0, got high={self.high_watermark} "
            f"low={self.low_watermark}",
        )
        require(
            self.power_cap_w is None or self.power_cap_w > 0,
            "AutoscaleConfig",
            "power_cap_w",
            f"must be positive, got {self.power_cap_w}",
        )
        return self


@dataclasses.dataclass(frozen=True)
class ScaleAction:
    """One tick's decision for one pool."""

    pool: str
    verb: str  # "spawn" | "drain"
    instance_id: int | None = None  # the drain target, None for spawn


def _pool_power_w(instances: list[Instance], now_s: float) -> float:
    """Average electrical power of one pool's instances since start."""
    if now_s <= 0:
        return 0.0
    return sum(inst.energy_j() for inst in instances) / now_s


def plan_scaling(
    config: AutoscaleConfig,
    pools: dict[str, list[Instance]],
    limits: dict[str, tuple[int, int]],
    now_s: float,
) -> list[ScaleAction]:
    """The actions for this tick (at most one per pool, power cap last).

    ``pools`` maps pool name to *all* its instances (any state);
    ``limits`` maps pool name to ``(min_instances, max_instances)``.
    Pure function of its arguments — the determinism contract.
    """
    actions: list[ScaleAction] = []
    fleet_power_w = sum(
        _pool_power_w(instances, now_s) for instances in pools.values()
    )
    over_cap = (
        config.power_cap_w is not None and fleet_power_w > config.power_cap_w
    )
    for pool_name in sorted(pools):
        instances = pools[pool_name]
        active = [i for i in instances if i.state is InstanceState.ACTIVE]
        if not active:
            continue
        min_count, max_count = limits[pool_name]
        backlog_per_instance = sum(i.backlog for i in active) / len(active)
        if (
            backlog_per_instance > config.high_watermark
            and len(active) < max_count
            and not over_cap
        ):
            actions.append(ScaleAction(pool=pool_name, verb="spawn"))
        elif (
            backlog_per_instance < config.low_watermark
            and len(active) > min_count
        ):
            youngest = max(active, key=lambda inst: inst.instance_id)
            actions.append(
                ScaleAction(
                    pool=pool_name,
                    verb="drain",
                    instance_id=youngest.instance_id,
                )
            )
    if over_cap and not any(a.verb == "drain" for a in actions):
        # Shed one instance from the hungriest pool that can shrink.
        candidates = []
        for pool_name in sorted(pools):
            active = [
                i
                for i in pools[pool_name]
                if i.state is InstanceState.ACTIVE
            ]
            min_count, _ = limits[pool_name]
            if len(active) > min_count:
                candidates.append(
                    (_pool_power_w(pools[pool_name], now_s), pool_name, active)
                )
        if candidates:
            _, pool_name, active = max(
                candidates, key=lambda c: (c[0], c[1])
            )
            youngest = max(active, key=lambda inst: inst.instance_id)
            actions.append(
                ScaleAction(
                    pool=pool_name,
                    verb="drain",
                    instance_id=youngest.instance_id,
                )
            )
    return actions
