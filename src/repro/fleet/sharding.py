"""Shard fan-out: cells of the fleet simulated in parallel, merged canonically.

Real datacenters partition serving into independent *cells*: a request
is hashed to a cell at the front door and never crosses cells.  That
architecture is exactly what makes fleet simulation embarrassingly
parallel — each cell is a closed system, so simulating cells in
separate worker processes is *equivalent* to simulating them in one,
and the :mod:`repro.jobs` pool (order-preserving ``run_tasks``) fans
them out across cores.

Determinism contract: the shard *count* is part of the experiment
configuration (it changes queueing, like any topology choice), while
the *worker* count never touches the bytes — requests partition by
``req_id % shards`` (stable under arrival order), per-cell router seeds
derive from ``(seed, shard)``, and
:meth:`~repro.fleet.ledger.FleetLedger.merge` re-sorts instance entries
canonically, so a ``--jobs 16`` run and a serial run of the same
sharded fleet emit byte-identical ledgers regardless of which worker
finishes first.
"""

from __future__ import annotations

import dataclasses

from ..jobs.pool import run_tasks
from ..serve.requests import Request
from .cluster import FleetConfig, simulate_fleet
from .ledger import FleetLedger

__all__ = [
    "shard_requests",
    "split_fleet",
    "run_fleet",
    "simulate_shard",
]


def shard_requests(
    arrivals: list[Request], shards: int
) -> list[list[Request]]:
    """Partition a stream into cells by ``req_id % shards`` (stable)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    cells: list[list[Request]] = [[] for _ in range(shards)]
    for request in arrivals:
        cells[request.req_id % shards].append(request)
    return cells


def split_fleet(config: FleetConfig, shards: int) -> list[FleetConfig]:
    """Divide a fleet's instances across cells, preserving the pool mix.

    Instances are dealt round-robin across cells (pool by pool, one
    instance at a time), so cell sizes differ by at most one and — since
    the fleet has at least ``shards`` instances — every cell gets at
    least one server for its hash bucket.  Pools with no share in a cell
    are omitted from that cell's config.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return [config]
    if config.total_instances < shards:
        raise ValueError(
            f"cannot split {config.total_instances} instance(s) across "
            f"{shards} cells; need at least one instance per cell"
        )
    counts: list[dict[str, int]] = [{} for _ in range(shards)]
    cell = 0
    for pool in config.pools:
        for _ in range(pool.instances):
            counts[cell][pool.name] = counts[cell].get(pool.name, 0) + 1
            cell = (cell + 1) % shards
    cells: list[FleetConfig] = []
    for shard in range(shards):
        pools = tuple(
            pool.sized(counts[shard][pool.name])
            for pool in config.pools
            if counts[shard].get(pool.name)
        )
        cells.append(dataclasses.replace(config, pools=pools))
    return cells


@dataclasses.dataclass(frozen=True)
class _ShardTask:
    """One picklable cell simulation (module-level worker contract)."""

    config: FleetConfig
    arrivals: tuple[Request, ...]
    shard: int


def simulate_shard(task: _ShardTask) -> FleetLedger:
    """Worker: simulate one cell (module-level, picklable)."""
    return simulate_fleet(
        task.config, list(task.arrivals), shard=task.shard
    )


def run_fleet(
    config: FleetConfig,
    arrivals: list[Request],
    shards: int = 1,
    workers: int = 1,
) -> FleetLedger:
    """Simulate a (possibly sharded) fleet; merge ledgers canonically.

    ``shards`` shapes the experiment (cells are independent queueing
    systems); ``workers`` only decides how many processes simulate them
    and never changes a byte of the merged ledger.
    """
    cells = split_fleet(config, shards)
    if shards == 1:
        return simulate_fleet(config, arrivals)
    tasks = [
        _ShardTask(
            config=cells[shard],
            arrivals=tuple(cell_arrivals),
            shard=shard,
        )
        for shard, cell_arrivals in enumerate(shard_requests(arrivals, shards))
    ]
    return FleetLedger.merge(run_tasks(simulate_shard, tasks, workers=workers))
