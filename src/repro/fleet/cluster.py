"""The fleet simulator: one deterministic event loop over many executors.

:class:`FleetSimulator` composes pool-built
:class:`~repro.fleet.instance.Instance` objects under a single global
clock.  Each iteration finds the earliest pending event among

1. per-instance internal events (batch completions, batching-window
   expiries) — processed first, in canonical ``(pool, instance_id)``
   order, so routers observe post-completion queue depths;
2. the next request arrival — routed by the configured load balancer
   and offered to exactly one instance;
3. the next autoscaler control tick — processed last, so scaling reacts
   to the state the tick's arrivals produced.

Equal-time events resolve in that fixed order and arrivals tie-break by
``req_id`` (the same discipline as
:class:`~repro.serve.executor.ServeExecutor.run`), making the whole run
a pure function of ``(config, arrival stream)``: two same-seed runs
produce byte-identical :class:`~repro.fleet.ledger.FleetLedger`
documents.

Once the arrival stream is exhausted the fleet drains: every advance
passes ``draining=True`` so partial batches flush, and the loop ends
when no instance holds work.  Instances draining for the *autoscaler*
stop themselves the moment their backlog empties; everything still
running at the end is finalized at the global end time.
"""

from __future__ import annotations

import dataclasses
import math

from ..analysis.contracts import require
from ..jobs.store import ResultStore
from ..serve.requests import Request
from .autoscale import AutoscaleConfig, plan_scaling
from .instance import Instance, InstanceState
from .ledger import FleetLedger, InstanceLedger
from .pools import PoolConfig, build_cost_model, build_executor
from .routing import make_router

__all__ = ["FleetConfig", "FleetSimulator", "simulate_fleet"]


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """One fleet: its pools, router, SLO and (optional) autoscaler."""

    pools: tuple[PoolConfig, ...]
    router: str = "jsq"
    seed: int = 0
    slo_s: float | None = None
    autoscale: AutoscaleConfig | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FleetConfig":
        """Contract check: raise ``ValueError`` on any impossible field."""
        require(
            len(self.pools) >= 1,
            "FleetConfig",
            "pools",
            "needs at least one pool",
        )
        names = [pool.name for pool in self.pools]
        require(
            len(set(names)) == len(names),
            "FleetConfig",
            "pools",
            f"pool names must be unique, got {names}",
        )
        require(
            self.slo_s is None or self.slo_s > 0,
            "FleetConfig",
            "slo_s",
            f"must be positive, got {self.slo_s}",
        )
        return self

    @property
    def total_instances(self) -> int:
        """Initial fleet size across pools."""
        return sum(pool.instances for pool in self.pools)


class FleetSimulator:
    """Deterministic discrete-event simulation of one fleet."""

    def __init__(
        self,
        config: FleetConfig,
        shard: int = 0,
        store: ResultStore | None = None,
    ) -> None:
        self.config = config
        self.shard = shard
        self.router = make_router(config.router, seed=config.seed + shard)
        #: pool name -> shared cost model (read-only memo, one per pool).
        self.models = {
            pool.name: build_cost_model(pool, store=store)
            for pool in config.pools
        }
        self._pool_configs = {pool.name: pool for pool in config.pools}
        self._next_id = {pool.name: 0 for pool in config.pools}
        #: every instance ever spawned, including stopped ones.
        self.instances: list[Instance] = []
        for pool in config.pools:
            for _ in range(pool.instances):
                self._spawn(pool.name, 0.0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, pool_name: str, now_s: float) -> Instance:
        pool = self._pool_configs[pool_name]
        instance = Instance(
            pool=pool_name,
            instance_id=self._next_id[pool_name],
            executor=build_executor(
                pool, self.models[pool_name], slo_s=self.config.slo_s
            ),
            model=self.models[pool_name],
            spawned_s=now_s,
        )
        self._next_id[pool_name] += 1
        self.instances.append(instance)
        self.instances.sort(key=lambda inst: inst.key)
        return instance

    def _live(self) -> list[Instance]:
        return [
            inst
            for inst in self.instances
            if inst.state is not InstanceState.STOPPED
        ]

    def _routable(self) -> list[Instance]:
        return [inst for inst in self.instances if inst.routable]

    def _apply_scaling(self, now_s: float) -> None:
        pools: dict[str, list[Instance]] = {
            name: [] for name in self._pool_configs
        }
        for inst in self.instances:
            pools[inst.pool].append(inst)
        limits = {
            name: (pool.min_instances, pool.max_instances)
            for name, pool in self._pool_configs.items()
        }
        for action in plan_scaling(
            self.config.autoscale, pools, limits, now_s
        ):
            if action.verb == "spawn":
                self._spawn(action.pool, now_s)
            else:
                for inst in pools[action.pool]:
                    if inst.instance_id == action.instance_id:
                        inst.begin_drain(now_s)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, arrivals: list[Request]) -> FleetLedger:
        """Serve ``arrivals`` to exhaustion; return the merged ledger."""
        pending = sorted(arrivals, key=lambda r: (r.arrival_s, r.req_id))
        now_s = 0.0
        i = 0
        autoscale = self.config.autoscale
        next_tick_s = autoscale.interval_s if autoscale is not None else math.inf

        while True:
            live = self._live()
            draining = i >= len(pending)
            next_arrival_s = (
                pending[i].arrival_s if i < len(pending) else math.inf
            )
            next_instance_s = min(
                (inst.next_event_s(now_s) for inst in live),
                default=math.inf,
            )
            candidates = [next_arrival_s, next_instance_s]
            if not draining or any(inst.backlog for inst in live):
                candidates.append(next_tick_s)
            event_s = min(candidates)

            if event_s == math.inf:
                backlog = sum(inst.backlog for inst in live)
                if backlog:
                    for inst in live:
                        inst.advance(now_s, draining=True)
                    if sum(i2.backlog for i2 in self._live()) < backlog or any(
                        inst.executor.in_service_count
                        for inst in self._live()
                    ):
                        continue
                break

            now_s = max(now_s, event_s)
            # 1. internal events: completions, window expiries, dispatch.
            for inst in live:
                inst.advance(now_s, draining=draining)
            # 2. arrivals: route each request at its own timestamp.
            while i < len(pending) and pending[i].arrival_s <= now_s:
                request = pending[i]
                i += 1
                targets = self._routable()
                if not targets:
                    raise RuntimeError(
                        f"no routable instance for request {request.req_id}; "
                        "pools must keep min_instances >= 1 active"
                    )
                self.router.route(request, targets, now_s).offer(
                    request, now_s
                )
            draining = i >= len(pending)
            for inst in self._live():
                inst.advance(now_s, draining=draining)
            # 3. control tick.
            if autoscale is not None and now_s >= next_tick_s:
                self._apply_scaling(now_s)
                while next_tick_s <= now_s:
                    next_tick_s += autoscale.interval_s

        # A policy that refuses to drain strands its queue; account for it
        # (mirrors ServeExecutor.run's stranded-queue accounting).
        for inst in self._live():
            depth = inst.executor.queue.depth
            if depth:
                for request in inst.executor.queue.take(depth):
                    inst.metrics.observe_drop(request, now_s)
        # Close every window; stopped instances keep their earlier close.
        for inst in self.instances:
            if inst.state is not InstanceState.STOPPED:
                inst.metrics.finalize(now_s)
            inst.metrics.assert_conserved(
                inst.executor.queue.depth, inst.executor.in_service_count
            )
        return FleetLedger(
            instances=[
                InstanceLedger(
                    shard=self.shard,
                    pool=inst.pool,
                    instance_id=inst.instance_id,
                    spawned_s=inst.spawned_s,
                    stopped_s=inst.stopped_s,
                    metrics=inst.metrics,
                )
                for inst in self.instances
            ],
            makespan_s=now_s,
            slo_s=self.config.slo_s,
        )


def simulate_fleet(
    config: FleetConfig,
    arrivals: list[Request],
    shard: int = 0,
    store: ResultStore | None = None,
) -> FleetLedger:
    """Build and run one fleet over one arrival stream."""
    return FleetSimulator(config, shard=shard, store=store).run(arrivals)
