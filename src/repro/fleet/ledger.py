"""Fleet ledgers: canonical merge of per-instance serving ledgers.

Every instance keeps its own :class:`~repro.serve.metrics.ServeMetrics`
event ledger; a :class:`FleetLedger` is the canonical composition:
instance entries sorted by ``(shard, pool, instance_id)``, the merged
request view sorted by ``req_id``, and every fleet statistic derived
from those raw observations.  *Canonical* is the load-bearing word —
:meth:`FleetLedger.merge` produces byte-identical JSON no matter the
order shards finish in, which is what lets the fleet fan shards out
across the :mod:`repro.jobs` process pool and still promise
``--jobs N``-invariant bytes.

The headline capacity statistic rides here too:
``goodput_per_s_per_w`` — SLO-met completions per second per watt of
average electrical power (total completed-request energy over the
makespan).  All ratios return defined values (0.0) for empty windows,
matching the :func:`repro.serve.metrics.percentile` contract.
"""

from __future__ import annotations

import dataclasses
import json

from ..serve.metrics import ServeMetrics, percentile
from ..serve.requests import RequestRecord, RequestStatus

__all__ = ["InstanceLedger", "FleetLedger"]

_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class InstanceLedger:
    """One instance's closed observation window inside a fleet run."""

    shard: int
    pool: str
    instance_id: int
    spawned_s: float
    stopped_s: float | None
    metrics: ServeMetrics

    @property
    def key(self) -> tuple[int, str, int]:
        """Canonical sort key: ``(shard, pool, instance_id)``."""
        return (self.shard, self.pool, self.instance_id)


class FleetLedger:
    """The merged, canonically ordered ledger of one fleet run."""

    def __init__(
        self,
        instances: list[InstanceLedger],
        makespan_s: float,
        slo_s: float | None = None,
    ) -> None:
        if not instances:
            raise ValueError("a fleet ledger needs at least one instance")
        self.instances = sorted(instances, key=lambda entry: entry.key)
        keys = [entry.key for entry in self.instances]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate instance keys in fleet ledger: {keys}")
        self.makespan_s = makespan_s
        self.slo_s = slo_s

    @classmethod
    def merge(cls, shards: list["FleetLedger"]) -> "FleetLedger":
        """Compose shard ledgers; the result is order-independent.

        Shard workers may finish in any order — the constructor re-sorts
        instance entries into canonical order and the makespan is the
        max over shards, so equal inputs give equal bytes regardless of
        completion order.
        """
        if not shards:
            raise ValueError("nothing to merge: no shard ledgers")
        slos = {shard.slo_s for shard in shards}
        if len(slos) != 1:
            raise ValueError(f"shards disagree on slo_s: {sorted(slos, key=str)}")
        return cls(
            instances=[
                entry for shard in shards for entry in shard.instances
            ],
            makespan_s=max(shard.makespan_s for shard in shards),
            slo_s=shards[0].slo_s,
        )

    # ------------------------------------------------------------------
    # merged views
    # ------------------------------------------------------------------
    def merged_records(self) -> list[RequestRecord]:
        """Every request's final fate, fleet-wide, sorted by ``req_id``."""
        records = [
            record
            for entry in self.instances
            for record in entry.metrics.records
        ]
        records.sort(key=lambda record: record.req_id)
        ids = [record.req_id for record in records]
        if len(set(ids)) != len(ids):
            raise ValueError("a request appears in more than one instance ledger")
        return records

    def total_depth_integral(self) -> float:
        """Fleet-wide time integral of the in-system population.

        Summed in canonical instance order, so the float result is
        deterministic; Little's law ties it to the summed sojourn times
        of completed + dropped requests (the property suite checks this
        exactly).
        """
        return sum(entry.metrics.depth_integral for entry in self.instances)

    def summary(self) -> dict[str, float]:
        """The fleet-level headline numbers, derived from raw records."""
        records = self.merged_records()
        completed = [
            r for r in records if r.status is RequestStatus.COMPLETED
        ]
        latencies = sorted(r.latency_s for r in completed)
        slo_met = sum(1 for r in completed if r.slo_met)
        energy_j = sum(r.energy_j for r in completed)
        makespan = self.makespan_s
        power_w = energy_j / makespan if makespan else 0.0
        goodput_per_s = slo_met / makespan if makespan else 0.0
        instance_windows_s = sum(
            (
                entry.stopped_s
                if entry.stopped_s is not None
                else self.makespan_s
            )
            - entry.spawned_s
            for entry in self.instances
        )
        return {
            "arrivals": float(len(records)),
            "completed": float(len(completed)),
            "rejected": float(
                sum(1 for r in records if r.status is RequestStatus.REJECTED)
            ),
            "dropped": float(
                sum(1 for r in records if r.status is RequestStatus.DROPPED)
            ),
            "p50_latency_s": percentile(latencies, 0.50),
            "p95_latency_s": percentile(latencies, 0.95),
            "p99_latency_s": percentile(latencies, 0.99),
            "mean_latency_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "throughput_per_s": (
                len(completed) / makespan if makespan else 0.0
            ),
            "goodput_per_s": goodput_per_s,
            "slo_attainment": (
                slo_met / len(records) if records else 0.0
            ),
            "energy_j": energy_j,
            "energy_per_request_j": (
                energy_j / len(completed) if completed else 0.0
            ),
            "power_w": power_w,
            "goodput_per_s_per_w": (
                goodput_per_s / power_w if power_w else 0.0
            ),
            "instances": float(len(self.instances)),
            "instance_windows_s": instance_windows_s,
            "makespan_s": makespan,
        }

    def pool_summaries(self) -> dict[str, dict[str, float]]:
        """Per-pool instance ledgers rolled up (across shards)."""
        pools: dict[str, list[InstanceLedger]] = {}
        for entry in self.instances:
            pools.setdefault(entry.pool, []).append(entry)
        summaries: dict[str, dict[str, float]] = {}
        for pool in sorted(pools):
            records = [
                record
                for entry in pools[pool]
                for record in entry.metrics.records
            ]
            records.sort(key=lambda record: record.req_id)
            completed = [
                r for r in records if r.status is RequestStatus.COMPLETED
            ]
            latencies = sorted(r.latency_s for r in completed)
            energy_j = sum(r.energy_j for r in completed)
            makespan = self.makespan_s
            summaries[pool] = {
                "instances": float(len(pools[pool])),
                "arrivals": float(len(records)),
                "completed": float(len(completed)),
                "p99_latency_s": percentile(latencies, 0.99),
                "slo_attainment": (
                    sum(1 for r in completed if r.slo_met) / len(records)
                    if records
                    else 0.0
                ),
                "energy_per_request_j": (
                    energy_j / len(completed) if completed else 0.0
                ),
                "power_w": energy_j / makespan if makespan else 0.0,
            }
        return summaries

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-able document (round-trips via :meth:`from_json`)."""
        return {
            "schema_version": _SCHEMA_VERSION,
            "slo_s": self.slo_s,
            "makespan_s": self.makespan_s,
            "instances": [
                {
                    "shard": entry.shard,
                    "pool": entry.pool,
                    "instance_id": entry.instance_id,
                    "spawned_s": entry.spawned_s,
                    "stopped_s": entry.stopped_s,
                    "ledger": entry.metrics.to_json(),
                }
                for entry in self.instances
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FleetLedger":
        """Rebuild a :class:`FleetLedger` from :meth:`to_json` output."""
        if data.get("schema_version") != _SCHEMA_VERSION:
            raise ValueError(
                f"fleet ledger schema_version {data.get('schema_version')!r} "
                f"!= {_SCHEMA_VERSION}"
            )
        return cls(
            instances=[
                InstanceLedger(
                    shard=entry["shard"],
                    pool=entry["pool"],
                    instance_id=entry["instance_id"],
                    spawned_s=entry["spawned_s"],
                    stopped_s=entry["stopped_s"],
                    metrics=ServeMetrics.from_json(entry["ledger"]),
                )
                for entry in data["instances"]
            ],
            makespan_s=data["makespan_s"],
            slo_s=data["slo_s"],
        )

    def ledger_text(self) -> str:
        """The canonical byte-stable JSON text of this fleet run."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
