"""Fleet command line: trace replay and the capacity-planning sweep.

Replay mode (default)::

    python -m repro.fleet --pools binary-edge,hub-rate-edge --size 2 \
        --trace diurnal --rate 40 --peak-rate 120 --horizon-s 2 \
        --slo-ms 500 [--router jsq] [--autoscale] [--shards 2 --jobs 2] \
        [--json fleet.json]

builds the named heterogeneous fleet, replays one seeded shaped trace
through it and prints the merged fleet summary plus a per-pool
breakdown.  ``--json`` writes the canonical merged ledger — re-running
the same arguments (any ``--jobs``) emits byte-identical documents.

Capacity mode::

    python -m repro.fleet --capacity [--pools ...] [--fleet-sizes 2,4,8] \
        [--rate 30] [--slo-ms 500] [--jobs 4]

sweeps the pool presets over fleet sizes at per-instance-constant
offered load and prints requests/sec/watt at the fixed p99 SLO — the
capacity planner's table.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..eval.capacity import (
    DEFAULT_FLEET_SIZES,
    DEFAULT_POOLS,
    format_capacity,
    run_capacity_planning,
)
from ..eval.report import format_table
from ..jobs.store import ResultStore
from .autoscale import AutoscaleConfig
from .cluster import FleetConfig
from .ledger import FleetLedger
from .pools import pool_presets
from .routing import ROUTER_NAMES
from .sharding import run_fleet
from .traces import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    piecewise_poisson_arrivals,
)

__all__ = ["main", "build_parser", "build_fleet", "build_trace"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.fleet`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=(
            "Simulate a heterogeneous fleet of uSystolic serving instances, "
            "or sweep the capacity-planning grid (--capacity)."
        ),
    )
    parser.add_argument(
        "--capacity",
        action="store_true",
        help="run the capacity-planning sweep instead of one trace replay",
    )
    parser.add_argument(
        "--pools",
        default=",".join(DEFAULT_POOLS),
        help=(
            "comma-separated pool presets; "
            f"pick from {sorted(pool_presets())}"
        ),
    )
    parser.add_argument(
        "--size",
        type=int,
        default=2,
        help="replay mode: initial instances per pool",
    )
    parser.add_argument(
        "--fleet-sizes",
        default=",".join(str(n) for n in DEFAULT_FLEET_SIZES),
        help="capacity mode: comma-separated fleet sizes to sweep",
    )
    parser.add_argument("--router", choices=ROUTER_NAMES, default="jsq")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--slo-ms",
        type=float,
        default=500.0,
        help="per-request latency SLO (sets deadlines and goodput)",
    )
    parser.add_argument(
        "--trace",
        choices=["constant", "diurnal", "flash"],
        default="constant",
        help="replay mode: shape of the request stream",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=30.0,
        help=(
            "base arrival rate, req/s (capacity mode: per-instance rate, "
            "scaled with fleet size)"
        ),
    )
    parser.add_argument(
        "--peak-rate",
        type=float,
        default=None,
        help="diurnal crest / flash spike rate, req/s (default 4x --rate)",
    )
    parser.add_argument(
        "--horizon-s",
        type=float,
        default=1.0,
        help="length of the trace in simulated seconds",
    )
    parser.add_argument(
        "--period-s",
        type=float,
        default=None,
        help="diurnal period (default: the horizon, one full day)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the queue-depth threshold autoscaler",
    )
    parser.add_argument(
        "--autoscale-interval-s", type=float, default=0.05
    )
    parser.add_argument(
        "--power-cap-w",
        type=float,
        default=None,
        help="fleet-wide power cap the autoscaler enforces",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent cells (part of the experiment; changes bytes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for shard fan-out (never changes bytes)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        help="write the canonical merged fleet ledger as JSON",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed result store shared across runs (repro.jobs)",
    )
    return parser


def _parse_pools(text: str) -> tuple[str, ...]:
    names = tuple(token.strip() for token in text.split(",") if token.strip())
    if not names:
        raise ValueError("need at least one pool preset")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate pool in {text!r}")
    presets = pool_presets()
    for name in names:
        if name not in presets:
            raise ValueError(
                f"unknown pool {name!r}; pick from {sorted(presets)}"
            )
    return names


def _parse_sizes(text: str) -> tuple[int, ...]:
    sizes = tuple(int(token) for token in text.split(",") if token.strip())
    if not sizes:
        raise ValueError("need at least one fleet size")
    if any(size < 1 for size in sizes):
        raise ValueError(f"fleet sizes must be >= 1, got {sizes}")
    return sizes


def build_fleet(args: argparse.Namespace) -> FleetConfig:
    """Replay mode: the fleet the CLI arguments describe."""
    presets = pool_presets()
    pools = tuple(
        presets[name].sized(args.size) for name in _parse_pools(args.pools)
    )
    autoscale = (
        AutoscaleConfig(
            interval_s=args.autoscale_interval_s,
            power_cap_w=args.power_cap_w,
        )
        if args.autoscale
        else None
    )
    return FleetConfig(
        pools=pools,
        router=args.router,
        seed=args.seed,
        slo_s=args.slo_ms * 1e-3,
        autoscale=autoscale,
    )


def build_trace(args: argparse.Namespace, workload: str) -> list:
    """Replay mode: the seeded shaped arrival stream."""
    slo_s = args.slo_ms * 1e-3
    peak = args.peak_rate if args.peak_rate is not None else 4.0 * args.rate
    if args.trace == "constant":
        return piecewise_poisson_arrivals(
            workload,
            [(args.horizon_s, args.rate)],
            seed=args.seed,
            slo_s=slo_s,
        )
    if args.trace == "diurnal":
        period_s = args.period_s if args.period_s is not None else args.horizon_s
        return diurnal_arrivals(
            workload,
            base_rate_per_s=args.rate,
            peak_rate_per_s=peak,
            period_s=period_s,
            horizon_s=args.horizon_s,
            seed=args.seed,
            slo_s=slo_s,
        )
    return flash_crowd_arrivals(
        workload,
        base_rate_per_s=args.rate,
        spike_rate_per_s=peak,
        spike_start_s=0.25 * args.horizon_s,
        spike_duration_s=0.25 * args.horizon_s,
        horizon_s=args.horizon_s,
        seed=args.seed,
        slo_s=slo_s,
    )


def _summary_rows(ledger: FleetLedger) -> tuple[list[str], list[list[str]]]:
    headers = [
        "scope",
        "inst",
        "arrived",
        "done",
        "shed",
        "p99 ms",
        "SLO %",
        "goodput/s",
        "W",
        "req/s/W",
    ]
    s = ledger.summary()
    rows = [
        [
            "fleet",
            f"{s['instances']:.0f}",
            f"{s['arrivals']:.0f}",
            f"{s['completed']:.0f}",
            f"{s['rejected'] + s['dropped']:.0f}",
            f"{s['p99_latency_s'] * 1e3:.2f}",
            f"{100 * s['slo_attainment']:.1f}",
            f"{s['goodput_per_s']:.1f}",
            f"{s['power_w']:.3f}",
            f"{s['goodput_per_s_per_w']:.2f}",
        ]
    ]
    for pool, p in ledger.pool_summaries().items():
        rows.append(
            [
                pool,
                f"{p['instances']:.0f}",
                f"{p['arrivals']:.0f}",
                f"{p['completed']:.0f}",
                "-",
                f"{p['p99_latency_s'] * 1e3:.2f}",
                f"{100 * p['slo_attainment']:.1f}",
                "-",
                f"{p['power_w']:.3f}",
                "-",
            ]
        )
    return headers, rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry: replay a trace through a fleet, or sweep capacity."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Entry contract (repro.analysis): surface impossible configurations
    # as a clean usage error instead of a traceback mid-simulation.
    try:
        pools = _parse_pools(args.pools)
        sizes = _parse_sizes(args.fleet_sizes)
        if args.slo_ms <= 0:
            raise ValueError(f"--slo-ms must be positive, got {args.slo_ms}")
        if args.rate <= 0:
            raise ValueError(f"--rate must be positive, got {args.rate}")
        if args.shards < 1 or args.jobs < 1:
            raise ValueError(
                f"--shards and --jobs must be >= 1, got "
                f"{args.shards} and {args.jobs}"
            )
    except ValueError as exc:
        parser.error(str(exc))

    if args.capacity:
        points = run_capacity_planning(
            pools=pools,
            fleet_sizes=sizes,
            rate_per_instance_per_s=args.rate,
            horizon_s=args.horizon_s,
            slo_s=args.slo_ms * 1e-3,
            seed=args.seed,
            router=args.router,
            shards=args.shards,
            workers=args.jobs,
        )
        print(format_capacity(points))
        if args.json:
            document = [
                {
                    "pool": point.pool,
                    "fleet_size": point.fleet_size,
                    "rate_per_s": point.rate_per_s,
                    "slo_s": point.slo_s,
                    "meets_slo": point.meets_slo,
                    "summary": point.summary,
                }
                for point in points
            ]
            text = json.dumps(document, sort_keys=True, separators=(",", ":"))
            args.json.write_text(text + "\n")
            print(f"capacity table written to {args.json}")
        return 0

    try:
        config = build_fleet(args)
    except ValueError as exc:
        parser.error(str(exc))
    store = ResultStore(args.cache_dir) if args.cache_dir is not None else None
    workload = config.pools[0].workload
    arrivals = build_trace(args, workload)
    if args.shards == 1:
        from .cluster import simulate_fleet

        ledger = simulate_fleet(config, arrivals, store=store)
    else:
        ledger = run_fleet(
            config, arrivals, shards=args.shards, workers=args.jobs
        )

    headers, rows = _summary_rows(ledger)
    title = (
        f"fleet of {config.total_instances} ({args.pools}) x{args.size}, "
        f"router {args.router}, {len(arrivals)} requests ({args.trace}, "
        f"seed {args.seed}), SLO {args.slo_ms:g} ms"
        + (f", {args.shards} cells" if args.shards > 1 else "")
        + (", autoscaled" if args.autoscale else "")
    )
    print(format_table(headers, rows, title=title))

    if args.json:
        args.json.write_text(ledger.ledger_text() + "\n")
        print(f"fleet ledger written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
