"""Seeded load balancers: which instance serves the next request.

Every router sees the same thing — the routable instances in canonical
``(pool, instance_id)`` order plus the global clock — and returns one of
them.  All tie-breaking is by that canonical order and any randomness
flows from a seeded ``np.random.Generator`` owned by the router, so a
routing trace is a pure function of ``(seed, event history)`` and fleet
ledgers stay byte-identical across runs and shard layouts.

Four policies span the classic design space:

- :class:`RoundRobinRouter` — cycle through instances; oblivious to
  load, the baseline;
- :class:`JoinShortestQueueRouter` — send to the minimum backlog; the
  strongest oblivious-to-cost policy;
- :class:`PowerOfTwoRouter` — sample two instances with the seeded RNG
  and keep the less loaded: nearly JSQ quality at O(1) inspection cost
  (the "power of two choices" result);
- :class:`SloEnergyRouter` — predict each instance's finish time from
  its backlog and per-request service estimate, keep only instances
  predicted to meet the request's deadline, and among those pick the
  lowest energy-per-request pool.  This is the router that exploits a
  *heterogeneous* fleet: binary pools absorb urgent requests, unary
  pools soak up deadline-slack traffic at lower energy.
"""

from __future__ import annotations

import numpy as np

from ..serve.requests import Request
from .instance import Instance

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "PowerOfTwoRouter",
    "SloEnergyRouter",
    "ROUTER_NAMES",
    "make_router",
]


class Router:
    """Base policy: pick one routable instance per request."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def route(
        self, request: Request, instances: list[Instance], now_s: float
    ) -> Instance:
        """The instance that serves ``request`` (instances is non-empty,
        canonically ordered)."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the routable set in canonical order."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._turn = 0

    def route(
        self, request: Request, instances: list[Instance], now_s: float
    ) -> Instance:
        """The next instance in rotation (modulo the current set size)."""
        if not instances:
            raise ValueError("cannot route with no routable instances")
        chosen = instances[self._turn % len(instances)]
        self._turn += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Send each request to the instance with the smallest backlog."""

    def route(
        self, request: Request, instances: list[Instance], now_s: float
    ) -> Instance:
        """The minimum-backlog instance (ties by canonical order)."""
        return min(instances, key=lambda inst: (inst.backlog, inst.key))


class PowerOfTwoRouter(Router):
    """Seeded two-choice sampling: compare two, keep the less loaded."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._rng = np.random.default_rng(seed)

    def route(
        self, request: Request, instances: list[Instance], now_s: float
    ) -> Instance:
        """The less-loaded of two seeded random picks."""
        count = len(instances)
        if count == 1:
            return instances[0]
        first, second = (
            int(v) for v in self._rng.choice(count, size=2, replace=False)
        )
        pair = (instances[first], instances[second])
        return min(pair, key=lambda inst: (inst.backlog, inst.key))


class SloEnergyRouter(Router):
    """Deadline-feasible first, then cheapest energy per request.

    Predicted finish = ``now + (backlog + 1) * service_estimate`` — the
    fluid approximation that ignores batching gains, so it is
    pessimistic and the feasible set errs toward meeting the SLO.  With
    no feasible instance the request is already late everywhere; it goes
    to the earliest predicted finish instead.
    """

    def route(
        self, request: Request, instances: list[Instance], now_s: float
    ) -> Instance:
        """Cheapest deadline-feasible instance, else earliest finish."""
        scored = []
        for inst in instances:
            finish_s = now_s + (inst.backlog + 1) * inst.service_estimate_s
            scored.append((finish_s, inst))
        if request.deadline_s is not None:
            feasible = [
                (finish_s, inst)
                for finish_s, inst in scored
                if finish_s <= request.deadline_s
            ]
            if feasible:
                return min(
                    feasible,
                    key=lambda pair: (
                        pair[1].energy_estimate_j,
                        pair[1].backlog,
                        pair[1].key,
                    ),
                )[1]
        return min(scored, key=lambda pair: (pair[0], pair[1].key))[1]


#: Registered router names, the CLI/eval choice set.
ROUTER_NAMES: tuple[str, ...] = ("rr", "jsq", "po2", "slo-energy")


def make_router(name: str, seed: int = 0) -> Router:
    """Build a router by name (see :data:`ROUTER_NAMES`)."""
    routers = {
        "rr": RoundRobinRouter,
        "jsq": JoinShortestQueueRouter,
        "po2": PowerOfTwoRouter,
        "slo-energy": SloEnergyRouter,
    }
    if name not in routers:
        raise ValueError(
            f"unknown router {name!r}; pick from {sorted(routers)}"
        )
    return routers[name](seed=seed)
