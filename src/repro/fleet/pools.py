"""Pool specifications: which arrays a fleet is built from.

A *pool* is a homogeneous group of serving instances — same compute
scheme, same platform, same queue and batching policy — inside a
heterogeneous fleet.  The paper's design space maps directly onto pool
presets: binary-parallel arrays versus the HUB rate and temporal unary
codings, each on the edge (Eyeriss-shaped) or cloud (TPU-shaped)
platform from :mod:`repro.workloads.presets`.  A capacity planner then
asks which *mix* of pools, at which size, meets a p99 SLO per watt.

:class:`PoolConfig` is a frozen contract dataclass in the house style
(``validate()`` wired into ``__post_init__``); :func:`build_cost_model`
and :func:`build_executor` turn one into the :mod:`repro.serve` objects
a fleet instance wraps.  All instances of a pool share one
:class:`~repro.serve.costs.NetworkCostModel` (it is a read-only memo
over frozen configs), while each instance gets its own queue, batcher
and residency tracker.
"""

from __future__ import annotations

import dataclasses

from ..analysis.contracts import require
from ..jobs.store import ResultStore
from ..schemes import ComputeScheme
from ..serve.batching import make_batcher
from ..serve.costs import NetworkCostModel
from ..serve.executor import ServeExecutor
from ..serve.queueing import make_queue
from ..serve.residency import ResidencyTracker
from ..workloads.alexnet import alexnet_layers
from ..workloads.mlperf import mlperf_suite
from ..workloads.presets import CLOUD, EDGE, Platform

__all__ = [
    "PoolConfig",
    "pool_presets",
    "workload_layers",
    "build_cost_model",
    "build_executor",
]

_PLATFORMS: tuple[str, ...] = ("edge", "cloud")


def workload_layers(workload: str) -> list:
    """GEMM layer list of a named workload (AlexNet or an MLPerf entry)."""
    if workload == "alexnet":
        return alexnet_layers()
    suite = mlperf_suite()
    if workload not in suite:
        raise ValueError(
            f"unknown workload {workload!r}; pick from "
            f"{['alexnet'] + sorted(suite)}"
        )
    return suite[workload]


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """One homogeneous pool inside a heterogeneous fleet."""

    name: str
    scheme: ComputeScheme
    platform: str = "edge"
    bits: int = 8
    ebt: int | None = None
    act_frac: float | None = None
    workload: str = "alexnet"
    instances: int = 1
    min_instances: int = 1
    max_instances: int = 8
    queue_discipline: str = "fifo"
    queue_capacity: int = 256
    policy: str = "dynamic"
    max_batch: int = 8
    max_wait_s: float = 5e-3
    power_cap_w: float | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "PoolConfig":
        """Contract check: raise ``ValueError`` on any impossible field."""
        require(bool(self.name), "PoolConfig", "name", "must be a non-empty label")
        require(
            self.platform in _PLATFORMS,
            "PoolConfig",
            "platform",
            f"must be one of {_PLATFORMS}, got {self.platform!r}",
        )
        require(
            self.instances >= 1,
            "PoolConfig",
            "instances",
            f"must be >= 1, got {self.instances}",
        )
        require(
            1 <= self.min_instances <= self.max_instances,
            "PoolConfig",
            "min_instances",
            f"needs 1 <= min_instances <= max_instances, got "
            f"min={self.min_instances} max={self.max_instances}",
        )
        require(
            self.min_instances <= self.instances <= self.max_instances,
            "PoolConfig",
            "instances",
            f"{self.instances} outside "
            f"[{self.min_instances}, {self.max_instances}]",
        )
        require(
            self.max_wait_s >= 0,
            "PoolConfig",
            "max_wait_s",
            f"must be >= 0, got {self.max_wait_s}",
        )
        require(
            self.act_frac is None
            or (
                self.scheme.value_dependent_latency
                and 0.0 <= self.act_frac <= 1.0
            ),
            "PoolConfig",
            "act_frac",
            f"needs a value-dependent scheme and a value in [0, 1], got "
            f"scheme={self.scheme.value} act_frac={self.act_frac}",
        )
        require(
            self.power_cap_w is None or self.power_cap_w > 0,
            "PoolConfig",
            "power_cap_w",
            f"must be positive, got {self.power_cap_w}",
        )
        return self

    def sized(self, instances: int) -> "PoolConfig":
        """This pool at a different fleet size (bounds widened to fit)."""
        return dataclasses.replace(
            self,
            instances=instances,
            min_instances=min(self.min_instances, instances),
            max_instances=max(self.max_instances, instances),
        )

    def platform_preset(self) -> Platform:
        """The named :class:`~repro.workloads.presets.Platform`."""
        return EDGE if self.platform == "edge" else CLOUD


def pool_presets() -> dict[str, PoolConfig]:
    """The named pools of the capacity-planning space.

    {binary parallel, HUB rate (EBT 6), HUB temporal, tubGEMM at half
    magnitude, DiP} on each of the paper's two platforms.  Returned
    fresh per call so callers can ``dataclasses.replace`` without
    aliasing surprises.
    """
    presets = {}
    for platform in _PLATFORMS:
        presets[f"binary-{platform}"] = PoolConfig(
            name=f"binary-{platform}",
            scheme=ComputeScheme.BINARY_PARALLEL,
            platform=platform,
        )
        presets[f"hub-rate-{platform}"] = PoolConfig(
            name=f"hub-rate-{platform}",
            scheme=ComputeScheme.USYSTOLIC_RATE,
            platform=platform,
            ebt=6,
        )
        presets[f"hub-temporal-{platform}"] = PoolConfig(
            name=f"hub-temporal-{platform}",
            scheme=ComputeScheme.USYSTOLIC_TEMPORAL,
            platform=platform,
        )
        presets[f"tubgemm-{platform}"] = PoolConfig(
            name=f"tubgemm-{platform}",
            scheme=ComputeScheme.TUBGEMM_TEMPORAL,
            platform=platform,
            act_frac=0.5,
        )
        presets[f"dip-{platform}"] = PoolConfig(
            name=f"dip-{platform}",
            scheme=ComputeScheme.DIP_PARALLEL,
            platform=platform,
        )
    return presets


def build_cost_model(
    config: PoolConfig, store: ResultStore | None = None
) -> NetworkCostModel:
    """The pool's shared batched cost model on its platform."""
    platform = config.platform_preset()
    ebt = config.ebt if config.scheme.supports_early_termination else None
    array = platform.array(
        config.scheme, bits=config.bits, ebt=ebt, act_frac=config.act_frac
    ).validate()
    memory = platform.memory_for(config.scheme).validate()
    return NetworkCostModel(
        name=config.workload,
        layers=workload_layers(config.workload),
        array=array,
        memory=memory,
        store=store,
    )


def build_executor(
    config: PoolConfig,
    model: NetworkCostModel,
    slo_s: float | None = None,
) -> ServeExecutor:
    """One fresh serving executor for a new instance of this pool."""
    memory = config.platform_preset().memory_for(config.scheme)
    weight_buffer_bytes = (
        memory.sram_bytes_per_variable if memory.has_sram else 0
    )
    return ServeExecutor(
        models={config.workload: model},
        queue=make_queue(config.queue_discipline, config.queue_capacity),
        batcher=make_batcher(
            config.policy, config.max_batch, max_wait_s=config.max_wait_s
        ),
        slo_s=slo_s,
        power_cap_w=config.power_cap_w,
        residency=ResidencyTracker(weight_buffer_bytes),
    )
