"""Quantised inference: evaluate one trained model under any scheme.

The Figure 9 measurement: run the test set through the network with every
GEMM executed by the chosen :class:`~repro.nn.quant.QuantSpec` and report
top-1 accuracy.
"""

from __future__ import annotations

import numpy as np

from .layers import Sequential
from .quant import QuantMode, QuantSpec

__all__ = ["evaluate", "accuracy_sweep"]


def evaluate(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    spec: QuantSpec,
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy of ``model`` on (x, y) under ``spec``."""
    if len(y) == 0:
        raise ValueError("empty evaluation set")
    correct = 0
    for start in range(0, len(y), batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = model.forward(xb, spec)
        correct += int((logits.argmax(axis=1) == yb).sum())
    return correct / len(y)


def accuracy_sweep(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    ebts: list[int],
    modes: list[QuantMode] | None = None,
    batch_size: int = 64,
) -> dict[str, dict[int, float]]:
    """Accuracy of every (mode, EBT) pair plus the FP32 reference.

    Returns ``{mode_value: {ebt: accuracy}}`` with FP32 stored under key
    ``"fp32"`` mapping every EBT to the same reference accuracy.
    """
    if modes is None:
        modes = [QuantMode.FXP_O_RES, QuantMode.USYSTOLIC, QuantMode.FXP_I_RES]
    fp32 = evaluate(model, x, y, QuantSpec(QuantMode.FP32), batch_size)
    table: dict[str, dict[int, float]] = {"fp32": {ebt: fp32 for ebt in ebts}}
    for mode in modes:
        table[mode.value] = {
            ebt: evaluate(model, x, y, QuantSpec(mode, ebt), batch_size)
            for ebt in ebts
        }
    return table
