"""Activation magnitude/sparsity statistics: tubGEMM's latency knob.

tubGEMM encodes each activation as a temporal stream exactly as long as
its magnitude, so the scheme's *expected* MAC latency is set by the mean
activation magnitude rather than the worst case — which post-ReLU
activations keep low and magnitude pruning lowers further.  This module
measures that knob from real tensors (:func:`activation_stats`), applies
deterministic magnitude pruning (:func:`sparsify`), and maps a target
sparsity to the ``act_frac`` the latency law consumes
(:func:`act_frac_for_sparsity`), so sweeps can dial sparsity up and
watch tubGEMM's runtime fall while every other scheme stays put.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ActivationStats", "activation_stats", "sparsify", "act_frac_for_sparsity"]


@dataclasses.dataclass(frozen=True)
class ActivationStats:
    """Summary of one activation tensor at a given bitwidth."""

    bits: int
    sparsity: float
    """Fraction of exactly-zero elements."""
    mean_frac: float
    """Mean magnitude normalised to full scale ``2**(bits-1)``."""
    max_frac: float
    """Peak magnitude normalised to full scale (clipping diagnostic)."""

    @property
    def act_frac(self) -> float:
        """The value the tubGEMM expected-latency law consumes."""
        return self.mean_frac


def activation_stats(x: np.ndarray, bits: int) -> ActivationStats:
    """Measure the magnitude/sparsity profile of an activation tensor.

    ``x`` holds integer activations in the ``bits``-bit sign-magnitude
    range (the array's operand format); the returned ``mean_frac`` is
    the mean absolute value over *all* elements (zeros included), i.e.
    exactly the per-stream expected length divided by full scale.
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("activation tensor must be non-empty")
    mags = np.abs(x.astype(np.float64))
    scale = float(1 << (bits - 1))
    if mags.max(initial=0.0) >= scale:
        raise ValueError(f"activations exceed the {bits}-bit range")
    return ActivationStats(
        bits=bits,
        sparsity=float(np.count_nonzero(mags == 0) / max(1, mags.size)),
        mean_frac=float(mags.mean() / scale),
        max_frac=float(mags.max(initial=0.0) / scale),
    )


def sparsify(x: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero the smallest-magnitude fraction of a tensor, deterministically.

    Classic magnitude pruning: exactly ``floor(sparsity * size)`` elements
    are zeroed, chosen as the smallest absolute values with ties broken
    by flat index (a stable sort), so the result is identical on every
    machine.  Returns a new array; the input is never modified.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    x = np.asarray(x)
    out = x.copy()
    k = int(sparsity * x.size)
    if k == 0:
        return out
    order = np.argsort(np.abs(x), axis=None, kind="stable")
    flat = out.reshape(-1)
    flat[order[:k]] = 0
    return out


def act_frac_for_sparsity(sparsity: float, dense_mean_frac: float = 0.5) -> float:
    """Map a pruning level to tubGEMM's expected-magnitude knob.

    First-order model: pruning removes the smallest magnitudes, but at
    the planning stage the surviving mass is approximated as uniform, so
    the expected stream length scales with the surviving density::

        act_frac = (1 - sparsity) * dense_mean_frac

    ``dense_mean_frac`` is the unpruned tensor's mean magnitude fraction
    (0.5 for uniformly distributed operands); measure it with
    :func:`activation_stats` when a real tensor is available.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if not 0.0 < dense_mean_frac <= 1.0:
        raise ValueError(
            f"dense_mean_frac must be in (0, 1], got {dense_mean_frac}"
        )
    return (1.0 - sparsity) * dense_mean_frac
