"""Bridge from a built network to its hardware GEMM workload.

:func:`network_to_gemms` walks a :class:`~repro.nn.layers.Sequential`
model with a symbolic input shape and emits one :class:`~repro.gemm.
params.GemmParams` per Conv2d/Linear layer — the exact workload the cycle
simulator consumes.  This closes the Figure 8 loop for user-defined
models: the same object answers both "how accurate is it under uSystolic"
(``repro.nn.inference``) and "what does it cost on the array"
(``repro.sim.engine``).
"""

from __future__ import annotations

from ..gemm.params import GemmParams
from .layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    Residual,
    Sequential,
)

__all__ = ["network_to_gemms"]


def network_to_gemms(
    model: Sequential,
    input_shape: tuple[int, int, int],
    prefix: str = "layer",
) -> list[GemmParams]:
    """Trace shapes through ``model`` and emit its GEMM workload.

    ``input_shape`` is (H, W, C).  Layers without GEMMs (activations,
    pooling, flatten) only transform the traced shape.
    """
    gemms: list[GemmParams] = []
    _walk(model, input_shape, prefix, gemms)
    return gemms


def _walk(
    layer: Layer,
    shape: tuple[int, ...],
    prefix: str,
    out: list[GemmParams],
) -> tuple[int, ...]:
    if isinstance(layer, Sequential):
        for i, sub in enumerate(layer.layers):
            shape = _walk(sub, shape, f"{prefix}.{i}", out)
        return shape
    if isinstance(layer, Residual):
        inner_shape = _walk(layer.inner, shape, f"{prefix}.res", out)
        if inner_shape != shape:
            raise ValueError(
                f"residual branch changes shape {shape} -> {inner_shape}"
            )
        return shape
    if isinstance(layer, Conv2d):
        h, w, c = shape
        fan_in = layer.weight.shape[0]
        if fan_in != layer.kernel * layer.kernel * c:
            raise ValueError(
                f"{prefix}: traced channels {c} do not match conv fan-in"
            )
        oc = layer.weight.shape[1]
        ih, iw = h + 2 * layer.pad, w + 2 * layer.pad
        params = GemmParams(
            f"{prefix}.conv",
            ih=ih,
            iw=iw,
            ic=c,
            wh=layer.kernel,
            ww=layer.kernel,
            oc=oc,
            stride=layer.stride,
        )
        out.append(params)
        return (params.oh, params.ow, oc)
    if isinstance(layer, Linear):
        (features,) = _as_flat(shape)
        if features != layer.weight.shape[0]:
            raise ValueError(
                f"{prefix}: traced features {features} != linear in-features "
                f"{layer.weight.shape[0]}"
            )
        out.append(
            GemmParams.matmul(f"{prefix}.fc", 1, features, layer.weight.shape[1])
        )
        return (layer.weight.shape[1],)
    if isinstance(layer, MaxPool2d):
        h, w, c = shape
        return (h // layer.size, w // layer.size, c)
    if isinstance(layer, Flatten):
        total = 1
        for dim in shape:
            total *= dim
        return (total,)
    if isinstance(layer, GlobalAvgPool):
        return (shape[-1],)
    # Shape-preserving layers (activations etc.).
    return shape


def _as_flat(shape: tuple[int, ...]) -> tuple[int]:
    if len(shape) == 1:
        return (shape[0],)
    total = 1
    for dim in shape:
        total *= dim
    return (total,)
