"""Pure-numpy neural-network layers with pluggable GEMM backends.

Forward passes route every GEMM (convolution via im2col, fully-connected
directly) through a :class:`~repro.nn.quant.QuantSpec`, so one trained
model can be evaluated under FP32, fixed-point, or bit-exact uSystolic
arithmetic — the Figure 9 experiment.  Backward passes are float-only (the
paper performs no accuracy-preserving retraining; training happens in FP32
and quantisation is post-hoc).

Tensor layout: (batch, height, width, channels) for images, (batch,
features) after flattening.
"""

from __future__ import annotations

import abc

import numpy as np

from .quant import QuantMode, QuantSpec, quantized_gemm

__all__ = [
    "Layer",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Residual",
    "Sequential",
]

FP32 = QuantSpec(QuantMode.FP32)


class Layer(abc.ABC):
    """Base layer: forward with a quant spec, float backward for training."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        """Compute outputs; caches whatever backward needs."""

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate gradients (FP32 training only)."""
        raise NotImplementedError(f"{type(self).__name__} has no backward")

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for the optimiser."""
        return []

    def __call__(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        return self.forward(x, spec)


def _im2col_batch(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(B, H, W, C) -> (B, OH, OW, KH*KW*C) patch matrix."""
    b, h, w, c = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.empty((b, oh, ow, kh * kw * c), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            patch = x[:, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
            out[:, i, j, :] = patch.reshape(b, -1)
    return out


class Conv2d(Layer):
    """Valid-padding convolution lowered to GEMM (pad inputs upstream)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        fan_in = kernel * kernel * in_channels
        self.weight = rng.standard_normal((fan_in, out_channels)) * np.sqrt(
            2.0 / fan_in
        )
        self.bias = np.zeros(out_channels)
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        if self.pad:
            x = np.pad(
                x, ((0, 0), (self.pad, self.pad), (self.pad, self.pad), (0, 0))
            )
        self._x_shape = x.shape
        cols = _im2col_batch(x, self.kernel, self.kernel, self.stride)
        b, oh, ow, k = cols.shape
        self._cols = cols.reshape(b * oh * ow, k)
        out = quantized_gemm(self._cols, self.weight, spec) + self.bias
        return out.reshape(b, oh, ow, -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, oh, ow, oc = grad.shape
        gmat = grad.reshape(-1, oc)
        self.grad_weight = self._cols.T @ gmat
        self.grad_bias = gmat.sum(axis=0)
        gcols = gmat @ self.weight.T
        # col2im: scatter patch gradients back onto the (padded) input.
        _, h, w, c = self._x_shape
        gx = np.zeros((b, h, w, c))
        gcols = gcols.reshape(b, oh, ow, self.kernel, self.kernel, c)
        s = self.stride
        for i in range(oh):
            for j in range(ow):
                gx[:, i * s : i * s + self.kernel, j * s : j * s + self.kernel, :] += (
                    gcols[:, i, j]
                )
        if self.pad:
            gx = gx[:, self.pad : h - self.pad, self.pad : w - self.pad, :]
        return gx

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class Linear(Layer):
    """Fully-connected layer: (B, K) @ (K, OC) + bias."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.weight = rng.standard_normal((in_features, out_features)) * np.sqrt(
            2.0 / in_features
        )
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        self._x = x
        return quantized_gemm(x, self.weight, spec) + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grad_weight = self._x.T @ grad
        self.grad_bias = grad.sum(axis=0)
        return grad @ self.weight.T

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class ReLU(Layer):
    """Rectified linear unit: max(x, 0) with a pass-through mask gradient."""

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool2d(Layer):
    """Non-overlapping max pooling."""

    def __init__(self, size: int = 2) -> None:
        self.size = size

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        b, h, w, c = x.shape
        s = self.size
        oh, ow = h // s, w // s
        self._in_shape = x.shape
        cropped = x[:, : oh * s, : ow * s, :]
        windows = cropped.reshape(b, oh, s, ow, s, c)
        out = windows.max(axis=(2, 4))
        self._argmask = windows == out[:, :, None, :, None, :]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, oh, ow, c = grad.shape
        s = self.size
        expanded = (grad[:, :, None, :, None, :] * self._argmask).reshape(
            b, oh * s, ow * s, c
        )
        # Rows/columns cropped by non-divisible inputs get zero gradient.
        gx = np.zeros(self._in_shape)
        gx[:, : oh * s, : ow * s, :] = expanded
        return gx


class Flatten(Layer):
    """Collapse every non-batch axis into one feature vector."""

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class GlobalAvgPool(Layer):
    """Average over the spatial axes, one value per channel."""

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, h, w, c = self._shape
        return np.broadcast_to(grad[:, None, None, :], self._shape) / (h * w)


class Residual(Layer):
    """Residual block: ``x + inner(x)`` (the ResNet-style skip)."""

    def __init__(self, inner: "Sequential") -> None:
        self.inner = inner

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        return x + self.inner.forward(x, spec)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad + self.inner.backward(grad)

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return self.inner.params_and_grads()


class Sequential(Layer):
    """Layer container; also the top-level model type."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, spec)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        pairs = []
        for layer in self.layers:
            pairs.extend(layer.params_and_grads())
        return pairs

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p, _ in self.params_and_grads())


class BatchNorm(Layer):
    """Per-channel batch normalisation (training uses batch statistics,
    inference uses the tracked running estimates).

    At inference the affine transform could be folded into the previous
    convolution; keeping it explicit leaves quantisation behaviour
    unchanged because the transform runs in float either way (the paper's
    HUB flow only replaces GEMMs).
    """

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.grad_gamma = np.zeros(channels)
        self.grad_beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self.training = True

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        axes = tuple(range(x.ndim - 1))
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        self._std = np.sqrt(var + self.eps)
        self._xhat = (x - mean) / self._std
        return self.gamma * self._xhat + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        axes = tuple(range(grad.ndim - 1))
        n = grad.size // grad.shape[-1]
        self.grad_gamma = (grad * self._xhat).sum(axis=axes)
        self.grad_beta = grad.sum(axis=axes)
        gx_hat = grad * self.gamma
        return (
            gx_hat
            - gx_hat.mean(axis=axes)
            - self._xhat * (gx_hat * self._xhat).sum(axis=axes) / n
        ) / self._std

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.gamma, self.grad_gamma), (self.beta, self.grad_beta)]


class AvgPool2d(Layer):
    """Non-overlapping average pooling."""

    def __init__(self, size: int = 2) -> None:
        self.size = size

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        b, h, w, c = x.shape
        s = self.size
        oh, ow = h // s, w // s
        self._in_shape = x.shape
        cropped = x[:, : oh * s, : ow * s, :]
        return cropped.reshape(b, oh, s, ow, s, c).mean(axis=(2, 4))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, oh, ow, c = grad.shape
        s = self.size
        spread = np.broadcast_to(
            grad[:, :, None, :, None, :], (b, oh, s, ow, s, c)
        ).reshape(b, oh * s, ow * s, c) / (s * s)
        gx = np.zeros(self._in_shape)
        gx[:, : oh * s, : ow * s, :] = spread
        return gx


class Dropout(Layer):
    """Inverted dropout: active during training, identity at inference."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.training = True
        self._rng = np.random.default_rng(seed)

    def forward(self, x: np.ndarray, spec: QuantSpec = FP32) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
