"""DNN inference substrate: numpy layers, quantised GEMM backends, trainer."""

from .datasets import DIFFICULTIES, Dataset, make_dataset
from .inference import accuracy_sweep, evaluate
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
)
from .models import MODEL_BUILDERS, alexnet_mini, mnist4, resnet_mini
from .pipeline import network_to_gemms
from .serialize import load_model, save_model
from .sparsity import (
    ActivationStats,
    act_frac_for_sparsity,
    activation_stats,
    sparsify,
)
from .quant import (
    QuantMode,
    QuantSpec,
    gemm_fp32,
    gemm_fxp,
    gemm_usystolic,
    quantize_symmetric,
    quantized_gemm,
    usystolic_count_table,
)
from .training import TrainResult, evaluate_fp32, softmax_cross_entropy, train

__all__ = [
    "DIFFICULTIES",
    "Dataset",
    "make_dataset",
    "accuracy_sweep",
    "evaluate",
    "AvgPool2d",
    "BatchNorm",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Residual",
    "Sequential",
    "MODEL_BUILDERS",
    "network_to_gemms",
    "load_model",
    "save_model",
    "ActivationStats",
    "act_frac_for_sparsity",
    "activation_stats",
    "sparsify",
    "alexnet_mini",
    "mnist4",
    "resnet_mini",
    "QuantMode",
    "QuantSpec",
    "gemm_fp32",
    "gemm_fxp",
    "gemm_usystolic",
    "quantize_symmetric",
    "quantized_gemm",
    "usystolic_count_table",
    "TrainResult",
    "evaluate_fp32",
    "softmax_cross_entropy",
    "train",
]
