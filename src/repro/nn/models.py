"""CNN model builders standing in for the paper's three networks.

Scaled to what a pure-numpy trainer handles while keeping each network's
*architectural* character:

- :func:`mnist4` — the paper's small 4-layer CNN (2 conv + 2 FC);
- :func:`resnet_mini` — residual blocks with skip connections, the
  ResNet18 stand-in;
- :func:`alexnet_mini` — a deeper plain conv stack with a large FC head,
  the AlexNet stand-in (AlexNet's parameter mass lives in its FCs, which
  this preserves proportionally).
"""

from __future__ import annotations

from .layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
)

__all__ = ["mnist4", "resnet_mini", "alexnet_mini", "MODEL_BUILDERS"]


def mnist4(input_shape: tuple[int, int, int], num_classes: int) -> Sequential:
    """4-layer CNN: conv-pool-conv-pool-fc-fc."""
    h, w, c = input_shape
    after = ((h - 2) // 2 - 2) // 2  # two valid 3x3 convs + two 2x2 pools
    return Sequential(
        Conv2d(c, 8, 3, seed=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, seed=2),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(after * after * 16, 32, seed=3),
        ReLU(),
        Linear(32, num_classes, seed=4),
    )


def _res_block(channels: int, seed: int) -> Residual:
    return Residual(
        Sequential(
            Conv2d(channels, channels, 3, pad=1, seed=seed),
            ReLU(),
            Conv2d(channels, channels, 3, pad=1, seed=seed + 1),
        )
    )


def resnet_mini(input_shape: tuple[int, int, int], num_classes: int) -> Sequential:
    """Residual CNN: stem conv, two residual blocks, global pool, FC."""
    _, _, c = input_shape
    width = 12
    return Sequential(
        Conv2d(c, width, 3, pad=1, seed=10),
        ReLU(),
        _res_block(width, seed=11),
        ReLU(),
        MaxPool2d(2),
        _res_block(width, seed=13),
        ReLU(),
        GlobalAvgPool(),
        Linear(width, num_classes, seed=15),
    )


def alexnet_mini(input_shape: tuple[int, int, int], num_classes: int) -> Sequential:
    """Deeper plain conv stack + wide FC head (AlexNet's shape in miniature)."""
    h, w, c = input_shape
    after = (h // 2) // 2
    return Sequential(
        Conv2d(c, 12, 3, pad=1, seed=20),
        ReLU(),
        MaxPool2d(2),
        Conv2d(12, 16, 3, pad=1, seed=21),
        ReLU(),
        Conv2d(16, 16, 3, pad=1, seed=22),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(after * after * 16, 64, seed=23),
        ReLU(),
        Linear(64, 48, seed=24),
        ReLU(),
        Linear(48, num_classes, seed=25),
    )


MODEL_BUILDERS = {
    "mnist4": mnist4,
    "resnet_mini": resnet_mini,
    "alexnet_mini": alexnet_mini,
}
