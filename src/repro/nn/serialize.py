"""Model weight serialization: save/load trained networks as ``.npz``.

Training the Figure 9 models takes seconds, but a downstream user wants
to train once and sweep quantisation many times; these helpers persist
exactly the parameter tensors (in ``params_and_grads`` order) plus the
BatchNorm running statistics.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .layers import BatchNorm, Layer, Residual, Sequential

__all__ = ["save_model", "load_model"]


def _batchnorms(layer: Layer) -> list[BatchNorm]:
    if isinstance(layer, BatchNorm):
        return [layer]
    if isinstance(layer, Sequential):
        out: list[BatchNorm] = []
        for sub in layer.layers:
            out.extend(_batchnorms(sub))
        return out
    if isinstance(layer, Residual):
        return _batchnorms(layer.inner)
    return []


def save_model(model: Sequential, path: str | Path) -> None:
    """Persist every parameter (and BN running stats) to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for i, (param, _) in enumerate(model.params_and_grads()):
        arrays[f"param_{i}"] = param
    for i, bn in enumerate(_batchnorms(model)):
        arrays[f"bn_{i}_mean"] = bn.running_mean
        arrays[f"bn_{i}_var"] = bn.running_var
    np.savez(Path(path), **arrays)


def load_model(model: Sequential, path: str | Path) -> Sequential:
    """Load parameters saved by :func:`save_model` into ``model``.

    The model must have the same architecture (parameter count/shapes) as
    the one saved; mismatches raise.
    """
    data = np.load(Path(path))
    pairs = model.params_and_grads()
    saved = sorted(k for k in data.files if k.startswith("param_"))
    if len(saved) != len(pairs):
        raise ValueError(
            f"checkpoint has {len(saved)} parameters, model has {len(pairs)}"
        )
    for i, (param, _) in enumerate(pairs):
        stored = data[f"param_{i}"]
        if stored.shape != param.shape:
            raise ValueError(
                f"parameter {i} shape mismatch: {stored.shape} vs {param.shape}"
            )
        param[...] = stored
    for i, bn in enumerate(_batchnorms(model)):
        key = f"bn_{i}_mean"
        if key in data.files:
            bn.running_mean[...] = data[key]
            bn.running_var[...] = data[f"bn_{i}_var"]
    return model
