"""Synthetic image-classification datasets of graded difficulty.

The paper evaluates on MNIST, CIFAR10 and ImageNet; those are unavailable
offline, so three procedural stand-ins provide the same *difficulty
gradient*, which is what Figure 9's shape depends on (easy tasks tolerate
aggressive early termination, hard tasks don't):

- ``easy``   — 10 well-separated digit-like glyph classes, light noise
               (MNIST stand-in);
- ``medium`` — 10 textured multi-channel classes with jitter and stronger
               noise (CIFAR10 stand-in);
- ``hard``   — 20 classes built from overlapping prototype mixtures with
               heavy noise and distractors (ImageNet stand-in, scaled).

Every dataset is deterministic given its seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Dataset", "make_dataset", "DIFFICULTIES"]

DIFFICULTIES = ("easy", "medium", "hard")


@dataclasses.dataclass(frozen=True)
class Dataset:
    """Train/test split of one synthetic task."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.x_train.shape[1:]


def _glyph_prototypes(num_classes: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth random glyphs: low-frequency patterns that CNN kernels like."""
    protos = np.zeros((num_classes, size, size))
    freqs = rng.uniform(0.5, 2.0, size=(num_classes, 2))
    phases = rng.uniform(0, 2 * np.pi, size=(num_classes, 2))
    yy, xx = np.meshgrid(np.linspace(0, np.pi, size), np.linspace(0, np.pi, size))
    for k in range(num_classes):
        protos[k] = np.sin(freqs[k, 0] * 2 * yy + phases[k, 0]) * np.cos(
            freqs[k, 1] * 2 * xx + phases[k, 1]
        )
        # A class-specific blob to break symmetry.
        cy, cx = rng.integers(2, size - 2, size=2)
        protos[k, cy - 1 : cy + 2, cx - 1 : cx + 2] += 1.5
    return protos


def _render(
    protos: np.ndarray,
    labels: np.ndarray,
    channels: int,
    noise: float,
    jitter: int,
    mix: float,
    rng: np.random.Generator,
) -> np.ndarray:
    n = labels.size
    size = protos.shape[1]
    x = np.empty((n, size, size, channels))
    num_classes = protos.shape[0]
    # Per-image loop pins the RNG draw order; vectorising would reorder
    # the stream and change every generated dataset byte.
    for i, label in enumerate(labels):  # repro-lint: ignore[perf]
        img = protos[label].copy()
        if mix > 0:
            other = int(rng.integers(num_classes))
            img = (1 - mix) * img + mix * protos[other]
        if jitter:
            dy, dx = rng.integers(-jitter, jitter + 1, size=2)
            img = np.roll(np.roll(img, dy, axis=0), dx, axis=1)
        for c in range(channels):
            scale = 1.0 + 0.1 * c
            x[i, :, :, c] = scale * img + noise * rng.standard_normal((size, size))
    return x


def make_dataset(
    difficulty: str,
    train: int = 512,
    test: int = 200,
    size: int = 12,
    seed: int = 0,
) -> Dataset:
    """Build the synthetic dataset for one difficulty level."""
    if difficulty not in DIFFICULTIES:
        raise ValueError(f"difficulty must be one of {DIFFICULTIES}")
    # Stable per-difficulty seed offsets (str hash is process-salted).
    rng = np.random.default_rng(seed + {"easy": 1, "medium": 2, "hard": 7}[difficulty])
    settings = {
        "easy": dict(classes=10, channels=1, noise=0.20, jitter=0, mix=0.0),
        "medium": dict(classes=10, channels=3, noise=0.45, jitter=1, mix=0.10),
        "hard": dict(classes=20, channels=3, noise=0.60, jitter=1, mix=0.15),
    }[difficulty]
    protos = _glyph_prototypes(settings["classes"], size, rng)
    y_train = rng.integers(settings["classes"], size=train)
    y_test = rng.integers(settings["classes"], size=test)
    x_train = _render(
        protos,
        y_train,
        settings["channels"],
        settings["noise"],
        settings["jitter"],
        settings["mix"],
        rng,
    )
    x_test = _render(
        protos,
        y_test,
        settings["channels"],
        settings["noise"],
        settings["jitter"],
        settings["mix"],
        rng,
    )
    return Dataset(
        name=difficulty,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=settings["classes"],
    )
