"""Minimal FP32 trainer: SGD with momentum on softmax cross-entropy.

The paper performs no accuracy-preserving retraining; models are trained
once in float and then evaluated under each computing scheme, which is
exactly the flow here.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .datasets import Dataset
from .layers import Sequential

__all__ = ["TrainResult", "softmax_cross_entropy", "train", "evaluate_fp32"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean CE loss and gradient w.r.t. logits."""
    z = logits - logits.max(axis=1, keepdims=True)
    expz = np.exp(z)
    probs = expz / expz.sum(axis=1, keepdims=True)
    n = labels.size
    if n == 0:
        raise ValueError("empty batch")
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


@dataclasses.dataclass(frozen=True)
class TrainResult:
    """Trained model plus its learning curve."""

    model: Sequential
    losses: list[float]
    train_accuracy: float
    test_accuracy: float


def train(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 8,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainResult:
    """SGD-train ``model`` in FP32 on ``dataset``."""
    rng = np.random.default_rng(seed)
    x, y = dataset.x_train, dataset.y_train
    velocity = [np.zeros_like(p) for p, _ in model.params_and_grads()]
    losses = []
    for _ in range(epochs):
        order = rng.permutation(len(y))
        for start in range(0, len(y), batch_size):
            idx = order[start : start + batch_size]
            logits = model.forward(x[idx])
            loss, grad = softmax_cross_entropy(logits, y[idx])
            model.backward(grad)
            for v, (p, g) in zip(velocity, model.params_and_grads()):
                v *= momentum
                v -= lr * g
                p += v
            losses.append(loss)
    return TrainResult(
        model=model,
        losses=losses,
        train_accuracy=evaluate_fp32(model, x, y),
        test_accuracy=evaluate_fp32(model, dataset.x_test, dataset.y_test),
    )


def evaluate_fp32(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy in float."""
    logits = model.forward(x)
    return float((logits.argmax(axis=1) == y).mean())
