"""Quantised GEMM backends for whole-network accuracy evaluation (Fig. 9).

Four computing schemes are compared, exactly as Section V-A defines them:

- **FP32** — float32 reference (the original model);
- **FXP-i-res(n)** — inputs quantised to n bits, exact products, 2n-bit
  outputs (input-resolution fixed point);
- **FXP-o-res(n)** — inputs quantised to ~n/2 bits each so the *output*
  is n bits (output-resolution fixed point);
- **uSystolic(n)** — the paper's HUB flow: N-bit inputs, unipolar uMUL
  early-terminated to EBT n, binary accumulation, n-bit products restored
  by the output shifter.

The uSystolic backend here is *bit-exact* with the scalar kernel yet fully
vectorised.  With Sobol C-BSG the product count is the closed form
``count(a, b) = #{k < a : S_k < b}`` (the number of the first ``a`` Sobol
values below ``b``), so a precomputed (2^m+1) x (2^m+1) table turns a whole
GEMM into two gathers and a sum.  Rate and temporal coding produce the
same counts (the enable-conditioned RNG sees the same index sequence),
matching the paper's note that their accuracies coincide.
"""

from __future__ import annotations

import dataclasses
import enum
import functools

import numpy as np

from ..unary.rng import sobol_sequence

__all__ = [
    "QuantMode",
    "QuantSpec",
    "quantize_symmetric",
    "gemm_fp32",
    "gemm_fxp",
    "gemm_usystolic",
    "quantized_gemm",
    "usystolic_count_table",
]


class QuantMode(enum.Enum):
    """The Figure 9 computing schemes."""

    FP32 = "fp32"
    FXP_I_RES = "fxp-i-res"
    FXP_O_RES = "fxp-o-res"
    USYSTOLIC = "usystolic"


@dataclasses.dataclass(frozen=True)
class QuantSpec:
    """One evaluation point: mode + effective bitwidth.

    ``ebt`` follows the paper's x-axis (6..12); for FXP modes it is the
    resolution parameter n of FXP-i-res / FXP-o-res.
    """

    mode: QuantMode
    ebt: int = 8

    @property
    def label(self) -> str:
        if self.mode is QuantMode.FP32:
            return "FP32"
        cycles = 1 << (self.ebt - 1)
        if self.mode is QuantMode.USYSTOLIC:
            return f"uSystolic {self.ebt}-{cycles}"
        return f"{self.mode.value} n={self.ebt}"


def quantize_symmetric(x: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor quantisation to ``bits``-bit sign-magnitude ints.

    Returns (integer tensor, scale) with ``x ~= ints * scale``.  The range
    excludes the most negative two's-complement value, matching the
    hardware's sign-magnitude format.
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    limit = (1 << (bits - 1)) - 1
    max_abs = float(np.abs(x).max(initial=0.0))
    if max_abs == 0.0:
        return np.zeros_like(x, dtype=np.int64), 1.0
    scale = max_abs / limit
    ints = np.clip(np.round(x / scale), -limit, limit).astype(np.int64)
    return ints, scale


@functools.lru_cache(maxsize=None)
def usystolic_count_table(mag_bits: int) -> np.ndarray:
    """Exact uMUL count table: ``T[a, b] = #{k < a : S_k < b}``.

    ``S`` is the Sobol sequence both the IFM stream generator and the
    C-BSG weight RNG draw from.  Bit-identical to the scalar HUB kernel.
    """
    if mag_bits < 1:
        raise ValueError(f"mag_bits must be >= 1, got {mag_bits}")
    period = 1 << mag_bits
    s = sobol_sequence(mag_bits, period)
    # indicator[k, b] = 1 if S_k < b, for b in 0..period.
    indicator = (s[:, None] < np.arange(period + 1)[None, :]).astype(np.int64)
    table = np.zeros((period + 1, period + 1), dtype=np.int64)
    table[1:] = np.cumsum(indicator, axis=0)
    return table


def gemm_fp32(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Reference float GEMM: (V, K) @ (K, OC)."""
    return x.astype(np.float64) @ w.astype(np.float64)


def gemm_fxp(
    x: np.ndarray, w: np.ndarray, input_bits_x: int, input_bits_w: int
) -> np.ndarray:
    """Fixed-point GEMM with exact integer products, dequantised."""
    xi, sx = quantize_symmetric(x, input_bits_x)
    wi, sw = quantize_symmetric(w, input_bits_w)
    return (xi @ wi).astype(np.float64) * (sx * sw)


def gemm_usystolic(
    x: np.ndarray, w: np.ndarray, bits: int = 8, ebt: int | None = None
) -> np.ndarray:
    """Bit-exact uSystolic GEMM: (V, K) @ (K, OC), dequantised.

    Every product runs the HUB kernel at ``bits`` input resolution with
    EBT ``ebt``; accumulation across K is exact binary addition.
    """
    if ebt is None:
        ebt = bits
    if not 2 <= ebt <= bits:
        raise ValueError(f"ebt must be in [2, {bits}], got {ebt}")
    xi, sx = quantize_symmetric(x, bits)
    wi, sw = quantize_symmetric(w, bits)
    shift = bits - ebt
    mag_bits = ebt - 1
    table = usystolic_count_table(mag_bits)
    m_x = (np.abs(xi) >> shift).astype(np.int64)  # (V, K)
    m_w = (np.abs(wi) >> shift).astype(np.int64)  # (K, OC)
    sign = np.sign(xi)[:, :, None] * np.sign(wi)[None, :, :]  # (V, K, OC)
    counts = table[m_x[:, :, None], m_w[None, :, :]]  # (V, K, OC)
    # count -> n-bit product -> N-bit scale -> integer product scale.
    prod_scale = float((1 << shift) * (1 << (bits - 1)))
    acc = (sign * counts).sum(axis=1).astype(np.float64) * prod_scale
    return acc * (sx * sw)


def quantized_gemm(x: np.ndarray, w: np.ndarray, spec: QuantSpec) -> np.ndarray:
    """Dispatch a (V, K) @ (K, OC) GEMM to the scheme of ``spec``.

    For FXP-o-res with odd n the paper assigns ceil/floor halves to the
    two operands "whichever produces higher accuracy"; we give the extra
    bit to the weights (the lower-variance tensor in trained CNNs).
    """
    if x.ndim != 2 or w.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {x.shape} @ {w.shape}")
    if spec.mode is QuantMode.FP32:
        return gemm_fp32(x, w)
    if spec.mode is QuantMode.FXP_I_RES:
        return gemm_fxp(x, w, spec.ebt, spec.ebt)
    if spec.mode is QuantMode.FXP_O_RES:
        bits_x = spec.ebt // 2
        bits_w = spec.ebt - bits_x
        return gemm_fxp(x, w, max(bits_x, 2), max(bits_w, 2))
    # Data bitwidth N follows the platforms (8 from Eyeriss, 16 from TPU);
    # EBTs above 8 imply the 16-bit configuration.
    bits = 8 if spec.ebt <= 8 else 16
    return gemm_usystolic(x, w, bits=bits, ebt=spec.ebt)
