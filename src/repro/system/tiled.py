"""Multi-instance tiled uSystolic (the V-H scalability discussion).

"When considering multiple tiled uSystolic instances with interconnections,
uSystolic's low bandwidth empowers better scalability."  This module makes
that claim measurable: N array instances share one DRAM channel through an
interconnect of finite bisection bandwidth; layers are dispatched across
instances, and the shared-channel contention determines how throughput
scales with the instance count — near-linearly for crawling unary traffic,
sublinearly for binary designs whose aggregate demand saturates the links.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..core.config import ArrayConfig
from ..gemm.params import GemmParams
from ..memory.hierarchy import MemoryConfig
from ..jobs.runner import simulate_layer
from ..serve.residency import ResidencyTracker
from ..workloads.presets import Platform

__all__ = ["Interconnect", "TiledSystem", "ScalingPoint", "scaling_curve"]


@dataclasses.dataclass(frozen=True)
class Interconnect:
    """Shared fabric between instances and the memory channel."""

    bandwidth_bytes_per_s: float
    per_hop_latency_s: float = 25e-9

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("interconnect bandwidth must be positive")


@dataclasses.dataclass(frozen=True)
class TiledSystem:
    """``instances`` identical arrays behind one interconnect + DRAM."""

    array: ArrayConfig
    memory: MemoryConfig
    instances: int
    interconnect: Interconnect

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance")

    def run(
        self,
        layers: list[GemmParams],
        residency: Sequence[ResidencyTracker] | None = None,
        network: str = "net",
    ) -> "ScalingPoint":
        """Dispatch layers round-robin and compute system throughput.

        Each instance computes its share in parallel; the shared fabric
        and DRAM serve the *aggregate* traffic.  System runtime is the
        maximum of (slowest instance's compute, aggregate-traffic service
        time) — the same overlap model as the single-array engine.

        ``residency`` (one tracker per instance, carried across calls)
        models each instance's SRAM weight buffer: a repeat ``run`` of the
        same ``network`` whose per-instance weight share stayed resident
        skips that share's DRAM fill instead of double-counting it, while
        alternating two networks over the same trackers evicts and pays
        the fill on every switch.
        """
        if residency is not None and len(residency) != self.instances:
            raise ValueError(
                f"need one residency tracker per instance: got "
                f"{len(residency)} for {self.instances} instances"
            )
        per_instance: list[float] = [0.0] * self.instances
        weight_dram: list[int] = [0] * self.instances
        footprint: list[int] = [0] * self.instances
        total_bytes = 0
        total_macs = 0
        for i, layer in enumerate(layers):
            result = simulate_layer(layer, self.array, self.memory)
            # Instance-local time excludes shared-channel stalls; those are
            # re-applied at the aggregate level below.
            local = result.compute_cycles / 400e6
            idx = i % self.instances
            per_instance[idx] += local
            total_bytes += result.traffic.dram_total
            total_macs += layer.macs
            weight_dram[idx] += result.traffic.weight.dram_read
            footprint[idx] += layer.weight_bytes(self.array.bits)
        if residency is not None and self.memory.has_sram:
            for idx in range(self.instances):
                if footprint[idx] and residency[idx].admit(
                    f"{network}/{idx}", footprint[idx]
                ):
                    total_bytes -= weight_dram[idx]
        compute_s = max(per_instance)
        fabric_s = total_bytes / self.interconnect.bandwidth_bytes_per_s
        dram_s = total_bytes / self.memory.dram.effective_bandwidth_bytes_per_s
        runtime = max(compute_s, fabric_s, dram_s)
        runtime += self.interconnect.per_hop_latency_s * self.instances
        return ScalingPoint(
            instances=self.instances,
            runtime_s=runtime,
            throughput_gops=total_macs / runtime / 1e9,
            fabric_bound=fabric_s >= compute_s or dram_s >= compute_s,
            dram_bytes=total_bytes,
        )


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """System throughput at one instance count."""

    instances: int
    runtime_s: float
    throughput_gops: float
    fabric_bound: bool
    #: Aggregate DRAM traffic after any warm-residency discount.
    dram_bytes: int = 0


def scaling_curve(
    platform: Platform,
    array: ArrayConfig,
    memory: MemoryConfig,
    layers: list[GemmParams],
    instance_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    interconnect: Interconnect | None = None,
) -> list[ScalingPoint]:
    """Throughput vs instance count for one design.

    The default interconnect matches the DRAM channel (the realistic
    edge case: one memory port feeds the whole tile group).
    """
    if interconnect is None:
        interconnect = Interconnect(
            bandwidth_bytes_per_s=memory.dram.effective_bandwidth_bytes_per_s
        )
    points = []
    for count in instance_counts:
        system = TiledSystem(
            array=array, memory=memory, instances=count, interconnect=interconnect
        )
        points.append(system.run(layers))
    return points
