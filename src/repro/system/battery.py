"""Battery model for the edge-computing system-level discussion (V-H).

"If the power supply, e.g., battery in edge computing, is running out,
early termination improves energy and power efficiency to prolong the
system lifespan."  This module gives that sentence a measurable form: an
energy reservoir drained by inference jobs, with state-of-charge
thresholds the adaptive controller responds to.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Battery"]


@dataclasses.dataclass
class Battery:
    """An ideal energy reservoir with a state-of-charge readout.

    ``capacity_j`` is the usable energy; ``idle_power_w`` drains even when
    no inference runs (platform standby: DRAM refresh, regulators).
    """

    capacity_j: float
    idle_power_w: float = 0.0
    _drawn_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("battery capacity must be positive")
        if self.idle_power_w < 0:
            raise ValueError("idle power cannot be negative")

    @property
    def remaining_j(self) -> float:
        return max(0.0, self.capacity_j - self._drawn_j)

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction in [0, 1]."""
        return self.remaining_j / self.capacity_j

    @property
    def depleted(self) -> bool:
        return self.remaining_j == 0.0

    def draw(self, energy_j: float, elapsed_s: float = 0.0) -> bool:
        """Consume job energy plus idle drain; returns False if depleted.

        A job that would overdraw the battery drains it to zero and
        reports failure (the job did not complete).
        """
        if energy_j < 0 or elapsed_s < 0:
            raise ValueError("energy and time must be non-negative")
        demand = energy_j + self.idle_power_w * elapsed_s
        if demand > self.remaining_j:
            self._drawn_j = self.capacity_j
            return False
        self._drawn_j += demand
        return True
