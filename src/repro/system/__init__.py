"""System-level models (Section V-H): battery, adaptive EBT, tiled arrays."""

from .battery import Battery
from .controller import (
    AdaptiveEbtController,
    StreamOutcome,
    simulate_inference_stream,
)
from .tiled import Interconnect, ScalingPoint, TiledSystem, scaling_curve

__all__ = [
    "Battery",
    "AdaptiveEbtController",
    "StreamOutcome",
    "simulate_inference_stream",
    "Interconnect",
    "ScalingPoint",
    "TiledSystem",
    "scaling_curve",
]
