"""Adaptive early-termination controller (the V-H dynamic trade-off).

uSystolic's ISA carries the MAC cycle count per instruction, so a runtime
can retune the effective bitwidth *between inferences* with no hardware
change.  :class:`AdaptiveEbtController` implements the policy the paper
sketches: serve at full quality while energy is plentiful, then step the
EBT down as the battery drains, trading accuracy for lifespan.

:func:`simulate_inference_stream` runs a stream of inference jobs against
a battery and reports how many jobs complete under a fixed-EBT policy vs
the adaptive one — the quantitative version of "early termination ...
prolong[s] the system lifespan".
"""

from __future__ import annotations

import dataclasses

from ..core.config import ArrayConfig
from ..gemm.params import GemmParams
from ..memory.hierarchy import MemoryConfig
from ..schemes import ComputeScheme
from ..jobs.runner import simulate_network
from ..serve.residency import ResidencyTracker
from ..sim.engine import simulate_network_batched
from .battery import Battery

__all__ = ["AdaptiveEbtController", "StreamOutcome", "simulate_inference_stream"]


@dataclasses.dataclass(frozen=True)
class AdaptiveEbtController:
    """Map battery state-of-charge to an effective bitwidth.

    ``steps`` is a descending list of (soc_threshold, ebt): the first
    entry whose threshold is at or below the current state of charge
    wins.  The default policy serves EBT 8 above 60%, EBT 7 above 30%,
    and EBT 6 on reserve.
    """

    steps: tuple[tuple[float, int], ...] = ((0.6, 8), (0.3, 7), (0.0, 6))

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("controller needs at least one step")
        thresholds = [t for t, _ in self.steps]
        if thresholds != sorted(thresholds, reverse=True):
            raise ValueError("steps must be in descending threshold order")
        if thresholds[-1] != 0.0:
            raise ValueError("the last step must cover state of charge 0")

    def ebt_for(self, state_of_charge: float) -> int:
        if not 0.0 <= state_of_charge <= 1.0:
            raise ValueError("state of charge must be in [0, 1]")
        for threshold, ebt in self.steps:
            if state_of_charge >= threshold:
                return ebt
        return self.steps[-1][1]


@dataclasses.dataclass(frozen=True)
class StreamOutcome:
    """Result of serving an inference stream from a battery."""

    jobs_completed: int
    total_runtime_s: float
    ebt_history: tuple[int, ...]

    @property
    def mean_ebt(self) -> float:
        if not self.ebt_history:
            return 0.0
        return sum(self.ebt_history) / len(self.ebt_history)


def _job_cost(
    layers: list[GemmParams],
    array: ArrayConfig,
    memory: MemoryConfig,
    warm_weights: bool = False,
) -> tuple[float, float]:
    """(on-chip energy J, runtime s) of one inference.

    ``warm_weights`` prices the back-to-back re-run: the weights are
    already resident in SRAM, so the DRAM fill (and its SRAM write) is
    skipped — the cold path charges it, and charging it on *every* job of
    a same-network stream would double-count the fill.
    """
    if warm_weights:
        results = simulate_network_batched(
            layers, array, memory, warm_weights=True
        )
    else:
        results = simulate_network(layers, array, memory)
    return (
        sum(r.energy.on_chip for r in results),
        sum(r.runtime_s for r in results),
    )


def simulate_inference_stream(
    layers: list[GemmParams],
    battery: Battery,
    memory: MemoryConfig,
    rows: int,
    cols: int,
    bits: int = 8,
    controller: AdaptiveEbtController | None = None,
    fixed_ebt: int | None = None,
    max_jobs: int = 10_000,
    residency: ResidencyTracker | None = None,
    network: str = "stream",
) -> StreamOutcome:
    """Serve inferences until the battery dies (or ``max_jobs``).

    Exactly one of ``controller`` / ``fixed_ebt`` selects the policy.
    Per-EBT costs are simulated once and cached; the stream then drains
    the battery job by job.

    With a ``residency`` tracker, the first job pays the cold weight fill
    and every back-to-back repeat whose working set stayed resident runs
    warm (the fill is not re-charged); another workload sharing the
    tracker under ``network`` keys evicts it, so interleaved streams pay
    the fill again per switch.
    """
    if (controller is None) == (fixed_ebt is None):
        raise ValueError("pass exactly one of controller / fixed_ebt")
    cost_cache: dict[tuple[int, bool], tuple[float, float]] = {}
    weight_footprint_bytes = sum(layer.weight_bytes(bits) for layer in layers)

    def cost(ebt: int, warm: bool) -> tuple[float, float]:
        if (ebt, warm) not in cost_cache:
            array = ArrayConfig(
                rows=rows,
                cols=cols,
                scheme=ComputeScheme.USYSTOLIC_RATE,
                bits=bits,
                ebt=ebt,
            )
            cost_cache[(ebt, warm)] = _job_cost(
                layers, array, memory, warm_weights=warm
            )
        return cost_cache[(ebt, warm)]

    completed = 0
    runtime = 0.0
    history: list[int] = []
    while completed < max_jobs and not battery.depleted:
        ebt = (
            fixed_ebt
            if fixed_ebt is not None
            else controller.ebt_for(battery.state_of_charge)
        )
        warm = (
            residency.admit(network, weight_footprint_bytes)
            if residency is not None
            else False
        )
        energy, seconds = cost(ebt, warm)
        if not battery.draw(energy, elapsed_s=seconds):
            break
        completed += 1
        runtime += seconds
        history.append(ebt)
    return StreamOutcome(
        jobs_completed=completed,
        total_runtime_s=runtime,
        ebt_history=tuple(history),
    )
