"""Dead-reachability checker (``DEAD*``).

Export hygiene (``EXP*``) keeps ``__all__`` honest about what a module
*defines*; this pass asks the whole-program question: does anything
actually **reach** it?

- ``DEAD001`` — an ``__all__``-exported symbol that no CLI entrypoint
  (``repro.*.__main__``), test, example, benchmark or other module ever
  uses: no from-import that is then referenced, no attribute access
  through a module alias, no star-import use, and no live re-export
  chain.  The fix is to delete it or make it private — not to grow
  ``__all__`` around it.
- ``DEAD002`` — a module under ``repro`` that no root (entrypoint, test,
  example, benchmark) can reach through the import graph at all, even
  through lazy imports.

Liveness is computed as a fixpoint over re-export chains: a facade
re-export (``repro.hw.__init__`` re-exporting ``fast_adder``) keeps the
underlying definition alive only if the *facade's* export is itself
used somewhere.  Unresolvable attribute accesses (``obj.method``) match
conservatively by name, so duck-typed call sites never produce a false
positive.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from . import layers
from .findings import Finding
from .modgraph import ModuleIndex, ModuleInfo, resolve_symbol
from .visitor import ProjectChecker

__all__ = ["DeadChecker"]

ExportKey = tuple[str, str]  # (defining module, symbol name)


@dataclasses.dataclass
class _ModuleUses:
    """Name/attribute references observed in one module."""

    name_loads: set[str]
    #: name -> line numbers it is loaded on (for own-module use checks).
    name_load_lines: dict[str, set[int]]
    #: (module, attr) for attribute chains resolved through module aliases.
    resolved_attrs: set[tuple[str, str]]
    #: attrs whose base could not be resolved (``self.x``, ``obj.x``).
    fuzzy_attrs: set[str]


def _collect_uses(info: ModuleInfo, index: ModuleIndex) -> _ModuleUses:
    name_loads: set[str] = set()
    name_load_lines: dict[str, set[int]] = {}
    resolved_attrs: set[tuple[str, str]] = set()
    fuzzy_attrs: set[str] = set()
    for node in ast.walk(info.source.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name_loads.add(node.id)
            name_load_lines.setdefault(node.id, set()).add(node.lineno)
        elif isinstance(node, ast.Attribute):
            resolved = _resolve_attr_base(info, index, node)
            if resolved is not None:
                resolved_attrs.add(resolved)
            else:
                fuzzy_attrs.add(node.attr)
    return _ModuleUses(name_loads, name_load_lines, resolved_attrs, fuzzy_attrs)


def _resolve_attr_base(
    info: ModuleInfo, index: ModuleIndex, node: ast.Attribute
) -> tuple[str, str] | None:
    """``alias.sub.attr`` -> (module the chain lands in, final attr)."""
    parts: list[str] = [node.attr]
    current: ast.AST = node.value
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = info.imported_modules.get(current.id)
    if base is None:
        return None
    parts.reverse()
    for i, part in enumerate(parts):
        deeper = f"{base}.{part}"
        if deeper in index:
            base = deeper
            continue
        if i == len(parts) - 1:
            return (base, part)
        return None
    return None


class DeadChecker(ProjectChecker):
    """Unreachable exports and unreachable modules."""

    name = "dead"
    codes = {
        "DEAD001": "__all__-exported symbol unreachable from any "
        "entrypoint, test or other module",
        "DEAD002": "module unreachable from every entrypoint, test, "
        "example and benchmark",
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        uses = {
            info.name: _collect_uses(info, index)
            for info in index.modules.values()
        }
        yield from self._check_exports(index, uses)
        yield from self._check_modules(index)

    # -- DEAD001 ---------------------------------------------------------

    def _check_exports(
        self, index: ModuleIndex, uses: dict[str, _ModuleUses]
    ) -> Iterator[Finding]:
        exports: dict[ExportKey, tuple[ModuleInfo, int]] = {}
        origin: dict[ExportKey, ExportKey] = {}
        for info in index.targets():
            if layers.package_key(info.name) is None:
                continue
            for name, lineno in info.exports.items():
                if name.startswith("_"):
                    continue
                resolved = resolve_symbol(index, info.name, name)
                if resolved is None:
                    continue  # undefined (EXP001) or a submodule
                def_info, symbol = resolved
                exports[(info.name, name)] = (info, lineno)
                if def_info.name != info.name:
                    origin[(info.name, name)] = (def_info.name, symbol.name)

        alive: set[ExportKey] = set()
        for key, (info, _) in exports.items():
            if self._directly_used(index, uses, key, info):
                alive.add(key)
        # Propagate liveness down re-export chains: a live facade export
        # keeps the defining module's own export alive.
        changed = True
        while changed:
            changed = False
            for key in list(alive):
                target = origin.get(key)
                if target is not None and target in exports and target not in alive:
                    alive.add(target)
                    changed = True

        for key in sorted(exports):
            if key in alive:
                continue
            info, lineno = exports[key]
            module, name = key
            yield self.finding_at(
                info.source.path,
                lineno,
                0,
                "DEAD001",
                f"'{name}' is exported by {module} but nothing reaches it "
                "(no entrypoint, test or module uses it): delete it or "
                "make it private",
            )

    def _directly_used(
        self,
        index: ModuleIndex,
        uses: dict[str, _ModuleUses],
        key: ExportKey,
        exporting: ModuleInfo,
    ) -> bool:
        module, name = key
        resolved = resolve_symbol(index, module, name)
        if resolved is None:
            return True  # unresolvable: stay silent
        def_info, def_symbol = resolved
        def_key = (def_info.name, def_symbol.name)
        # A symbol its own module still calls/instantiates/annotates with
        # (outside its definition) is reachable through that live caller —
        # result dataclasses built by their module's public entry are the
        # canonical case.
        node = def_symbol.node
        span = (node.lineno, getattr(node, "end_lineno", node.lineno) or node.lineno)
        own_loads = uses[def_info.name].name_load_lines.get(def_symbol.name, set())
        if any(line < span[0] or line > span[1] for line in own_loads):
            return True
        if exporting.name != def_info.name and name in uses[
            exporting.name
        ].name_loads:
            return True
        for other in index.modules.values():
            if other.name == module:
                continue
            use = uses[other.name]
            # Fuzzy attribute match: any obj.<name> anywhere keeps it.
            if name in use.fuzzy_attrs:
                return True
            # Attribute access through a module alias that lands on the
            # exporting module (or any module whose symbol resolves the
            # same definition).
            for base, attr in use.resolved_attrs:
                if attr != name:
                    continue
                target = resolve_symbol(index, base, attr)
                if target is not None and (
                    (target[0].name, target[1].name) == def_key
                ):
                    return True
            # From-import binding that is then referenced by name.
            for local, (src, orig) in other.imported_symbols.items():
                if local not in use.name_loads:
                    continue
                target = resolve_symbol(index, src, orig)
                if target is not None and (
                    (target[0].name, target[1].name) == def_key
                ):
                    return True
            # Star import of the exporting module, then a bare-name use.
            if name in use.name_loads and any(
                s == module
                or (
                    (t := resolve_symbol(index, s, name)) is not None
                    and (t[0].name, t[1].name) == def_key
                )
                for s in other.star_imports
            ):
                return True
        return False

    # -- DEAD002 ---------------------------------------------------------

    def _check_modules(self, index: ModuleIndex) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {name: set() for name in index.modules}
        for info in index.modules.values():
            for edge in info.imports:
                targets = {edge.target}
                parts = edge.target.split(".")
                targets.update(
                    ".".join(parts[:i]) for i in range(1, len(parts))
                )
                graph[info.name].update(t for t in targets if t in index)

        roots = [
            info.name
            for info in index.modules.values()
            if not info.is_target  # context: the test suite
            or layers.package_key(info.name) is None  # examples/benchmarks
            or info.basename == "__main__"  # CLI entrypoints
        ]
        reached: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in reached:
                continue
            reached.add(name)
            stack.extend(graph[name] - reached)

        for info in sorted(index.targets(), key=lambda m: m.name):
            if layers.package_key(info.name) is None:
                continue
            if info.name in reached:
                continue
            yield self.finding_at(
                info.source.path,
                1,
                0,
                "DEAD002",
                f"module {info.name} is unreachable from every entrypoint, "
                "test, example and benchmark",
            )
