"""Architecture checker (``ARCH*``): layering contract + import cycles.

Enforces the layer DAG declared in :mod:`repro.analysis.layers` over the
whole-program import graph:

- ``ARCH001`` — a module imports a unit in a *higher* layer (``unary``
  reaching into ``sim``); entrypoint modules (``cli``/``__main__``) and
  the root facade are sanctioned composition roots and exempt;
- ``ARCH002`` — an import-time module cycle (lazy function-scope and
  ``TYPE_CHECKING`` imports excluded): the static shape of a circular
  import crash;
- ``ARCH003`` — a top-level unit under ``repro`` that the layer spec
  does not declare: new subsystems must take an explicit position.

``ARCH001`` fires per offending import statement, so a layering
inversion lists every site that must move; ``ARCH002`` fires once per
strongly connected component.
"""

from __future__ import annotations

from typing import Iterator

from . import layers
from .findings import Finding
from .modgraph import (
    ModuleIndex,
    import_time_graph,
    strongly_connected_components,
)
from .visitor import ProjectChecker

__all__ = ["ArchChecker", "layer_violations"]


def layer_violations(index: ModuleIndex) -> set[tuple[str, str]]:
    """Package pairs ``(from, to)`` that invert the declared layering."""
    pairs: set[tuple[str, str]] = set()
    for info in index.targets():
        src_unit = layers.package_key(info.name)
        if src_unit is None or layers.is_exempt_module(info.name):
            continue
        src_layer = layers.layer_index(src_unit)
        if src_layer is None:
            continue
        for edge in info.imports:
            dst_unit = layers.package_key(edge.target)
            if dst_unit is None or dst_unit in ("", src_unit):
                continue
            dst_layer = layers.layer_index(dst_unit)
            if dst_layer is not None and dst_layer > src_layer:
                pairs.add((src_unit, dst_unit))
    return pairs


class ArchChecker(ProjectChecker):
    """Layer-DAG and import-cycle enforcement over the module graph."""

    name = "arch"
    codes = {
        "ARCH001": "import crosses the layer DAG upward (forbidden edge)",
        "ARCH002": "import-time module cycle (circular import shape)",
        "ARCH003": "top-level unit missing from the declared layer spec",
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        yield from self._check_layering(index)
        yield from self._check_cycles(index)
        yield from self._check_declared(index)

    # -- ARCH001 ---------------------------------------------------------

    def _check_layering(self, index: ModuleIndex) -> Iterator[Finding]:
        for info in sorted(index.targets(), key=lambda m: m.name):
            src_unit = layers.package_key(info.name)
            if src_unit is None or src_unit == "":
                continue
            if layers.is_exempt_module(info.name):
                continue
            src_layer = layers.layer_index(src_unit)
            if src_layer is None:
                continue  # undeclared: ARCH003's problem, not ARCH001's
            for edge in info.imports:
                dst_unit = layers.package_key(edge.target)
                if dst_unit in (None, "", src_unit):
                    continue
                dst_layer = layers.layer_index(dst_unit)
                if dst_layer is None or dst_layer <= src_layer:
                    continue
                yield self.finding_at(
                    info.source.path,
                    edge.lineno,
                    0,
                    "ARCH001",
                    f"{info.name} (layer '{layers.layer_name(src_unit)}') "
                    f"imports {edge.target} (layer "
                    f"'{layers.layer_name(dst_unit)}'): imports must flow "
                    "downward",
                )

    # -- ARCH002 ---------------------------------------------------------

    def _check_cycles(self, index: ModuleIndex) -> Iterator[Finding]:
        graph = import_time_graph(index)
        for component in strongly_connected_components(graph):
            members = set(component)
            # Anchor at the first member that is a lint target, at its
            # first import participating in the cycle.
            anchor = None
            for name in component:
                info = index.get(name)
                if info is None or not info.is_target:
                    continue
                for edge in info.imports:
                    if edge.lazy or edge.target not in members:
                        continue
                    anchor = (info, edge)
                    break
                if anchor:
                    break
            if anchor is None:
                continue
            info, edge = anchor
            yield self.finding_at(
                info.source.path,
                edge.lineno,
                0,
                "ARCH002",
                "import-time cycle: " + " -> ".join(component + [component[0]]),
            )

    # -- ARCH003 ---------------------------------------------------------

    def _check_declared(self, index: ModuleIndex) -> Iterator[Finding]:
        declared = layers.declared_units()
        seen: set[str] = set()
        for info in sorted(index.targets(), key=lambda m: m.name):
            unit = layers.package_key(info.name)
            if unit in (None, "") or unit in declared or unit in seen:
                continue
            seen.add(unit)
            # Anchor at the unit's own __init__ when indexed, else at the
            # first module observed in it.
            init = index.get(f"{layers.ROOT_PACKAGE}.{unit}")
            anchor = init if init is not None else info
            yield self.finding_at(
                anchor.source.path,
                1,
                0,
                "ARCH003",
                f"package 'repro.{unit}' is not declared in the layer spec "
                "(repro/analysis/layers.py): give it a layer",
            )
