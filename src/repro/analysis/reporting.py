"""Text and JSON renderers for analysis findings.

The text form is the human-facing ``path:line:col CODE message`` listing
with a per-group summary; the JSON form is a stable machine-readable
document versioned by ``schema_version`` (see ``docs/analysis.md`` for
the pinned shape) that round-trips through
:meth:`repro.analysis.findings.Finding.from_dict`.  When a baseline is
in force, both renderers show what it accepted and any stale entries.
When a cProfile document was supplied (``--profile``), both renderers
additionally rank the findings that land inside measured-hot functions
by cumulative seconds.
"""

from __future__ import annotations

import json
from collections import Counter

from .baseline import BaselineDelta
from .findings import Finding

__all__ = [
    "render_text",
    "render_json",
    "rank_by_profile",
    "JSON_SCHEMA_VERSION",
]

#: Bumped whenever the JSON document shape changes.  v2 added
#: ``schema_version``, ``summary`` and the ``baseline`` block; v3 added
#: the ``profile`` block (measured-hotness ranking from ``--profile``);
#: v4 added the optional per-finding ``data`` payload carrying the
#: inferred intervals/shapes behind ``SHAPE``/``BND`` findings.
JSON_SCHEMA_VERSION = 4


def rank_by_profile(
    findings: list[Finding], entries: list
) -> list[tuple[Finding, float]]:
    """Pair findings with measured cumulative seconds, hottest first.

    ``entries`` are :class:`repro.analysis.perf.ProfileEntry` rows.  A
    finding matches the profiled function whose definition line is the
    nearest one at-or-above it in the same file — cProfile reports the
    ``def`` line, so this attributes a finding to its enclosing profiled
    function without needing function extents.
    """
    ranked: list[tuple[Finding, float]] = []
    for finding in findings:
        best_line = -1
        best_time: float | None = None
        for entry in entries:
            if entry.line > finding.line or not _paths_match(
                finding.path, entry.file
            ):
                continue
            if entry.line > best_line or (
                entry.line == best_line
                and (best_time is None or entry.cumtime_s > best_time)
            ):
                best_line = entry.line
                best_time = entry.cumtime_s
        if best_time is not None:
            ranked.append((finding, best_time))
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked


def _paths_match(finding_path: str, profile_file: str) -> bool:
    a = finding_path.replace("\\", "/")
    b = profile_file.replace("\\", "/")
    return a.endswith(b) or b.endswith(a)


def render_text(
    findings: list[Finding],
    files_scanned: int,
    delta: BaselineDelta | None = None,
    profile: tuple[str, list[tuple[Finding, float]]] | None = None,
) -> str:
    """Human-readable report: sorted findings plus a summary line."""
    lines = [f.render() for f in sorted(findings)]
    if findings:
        by_group = Counter(f.group for f in findings)
        breakdown = ", ".join(
            f"{count} {group}" for group, count in sorted(by_group.items())
        )
        lines.append(
            f"\n{len(findings)} finding(s) in {files_scanned} file(s): "
            f"{breakdown}"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s)")
    if delta is not None:
        if delta.accepted:
            lines.append(f"baseline: {len(delta.accepted)} accepted finding(s)")
        for path, code, message in delta.stale:
            lines.append(
                f"stale baseline entry: {path} {code} {message} "
                "(fixed? rewrite with --write-baseline)"
            )
    if profile is not None:
        profile_path, ranked = profile
        lines.append(f"\nprofile ranking ({profile_path}):")
        if ranked:
            for finding, cumtime_s in ranked:
                lines.append(
                    f"  {cumtime_s:8.3f}s  {finding.path}:{finding.line} "
                    f"{finding.code}"
                )
        else:
            lines.append("  no finding lands in a profiled function")
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    files_scanned: int,
    delta: BaselineDelta | None = None,
    baseline_path: str | None = None,
    profile: tuple[str, list[tuple[Finding, float]]] | None = None,
) -> str:
    """Machine-readable report; parse with ``json.loads``."""
    by_group = Counter(f.group for f in sorted(findings))
    doc = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "findings": [f.to_dict() for f in sorted(findings)],
        "summary": {
            "total": len(findings),
            "by_group": dict(sorted(by_group.items())),
        },
        "baseline": None,
        "profile": None,
    }
    if delta is not None:
        doc["baseline"] = {
            "path": baseline_path,
            "accepted": len(delta.accepted),
            "new": len(delta.new),
            "stale": [
                {"path": p, "code": c, "message": m} for p, c, m in delta.stale
            ],
        }
    if profile is not None:
        profile_path, ranked = profile
        doc["profile"] = {
            "path": profile_path,
            "ranked": [
                {**finding.to_dict(), "cumtime_s": cumtime_s}
                for finding, cumtime_s in ranked
            ],
        }
    return json.dumps(doc, indent=2)
