"""Text and JSON renderers for analysis findings.

The text form is the human-facing ``path:line:col CODE message`` listing
with a per-group summary; the JSON form is a stable machine-readable
document versioned by ``schema_version`` (see ``docs/analysis.md`` for
the pinned shape) that round-trips through
:meth:`repro.analysis.findings.Finding.from_dict`.  When a baseline is
in force, both renderers show what it accepted and any stale entries.
"""

from __future__ import annotations

import json
from collections import Counter

from .baseline import BaselineDelta
from .findings import Finding

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON document shape changes.  v2 added
#: ``schema_version``, ``summary`` and the ``baseline`` block.
JSON_SCHEMA_VERSION = 2


def render_text(
    findings: list[Finding],
    files_scanned: int,
    delta: BaselineDelta | None = None,
) -> str:
    """Human-readable report: sorted findings plus a summary line."""
    lines = [f.render() for f in sorted(findings)]
    if findings:
        by_group = Counter(f.group for f in findings)
        breakdown = ", ".join(
            f"{count} {group}" for group, count in sorted(by_group.items())
        )
        lines.append(
            f"\n{len(findings)} finding(s) in {files_scanned} file(s): "
            f"{breakdown}"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s)")
    if delta is not None:
        if delta.accepted:
            lines.append(f"baseline: {len(delta.accepted)} accepted finding(s)")
        for path, code, message in delta.stale:
            lines.append(
                f"stale baseline entry: {path} {code} {message} "
                "(fixed? rewrite with --write-baseline)"
            )
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    files_scanned: int,
    delta: BaselineDelta | None = None,
    baseline_path: str | None = None,
) -> str:
    """Machine-readable report; parse with ``json.loads``."""
    by_group = Counter(f.group for f in sorted(findings))
    doc = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "findings": [f.to_dict() for f in sorted(findings)],
        "summary": {
            "total": len(findings),
            "by_group": dict(sorted(by_group.items())),
        },
        "baseline": None,
    }
    if delta is not None:
        doc["baseline"] = {
            "path": baseline_path,
            "accepted": len(delta.accepted),
            "new": len(delta.new),
            "stale": [
                {"path": p, "code": c, "message": m} for p, c, m in delta.stale
            ],
        }
    return json.dumps(doc, indent=2)
