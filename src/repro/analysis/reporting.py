"""Text and JSON renderers for analysis findings.

The text form is the human-facing ``path:line:col CODE message`` listing
with a per-group summary; the JSON form is a stable machine-readable
document (``{"version": 1, "files_scanned": N, "findings": [...]}``)
that round-trips through :meth:`repro.analysis.findings.Finding.from_dict`.
"""

from __future__ import annotations

import json
from collections import Counter

from .findings import Finding

__all__ = ["render_text", "render_json", "JSON_VERSION"]

JSON_VERSION = 1


def render_text(findings: list[Finding], files_scanned: int) -> str:
    """Human-readable report: sorted findings plus a summary line."""
    lines = [f.render() for f in sorted(findings)]
    if findings:
        by_group = Counter(f.group for f in findings)
        breakdown = ", ".join(
            f"{count} {group}" for group, count in sorted(by_group.items())
        )
        lines.append(
            f"\n{len(findings)} finding(s) in {files_scanned} file(s): "
            f"{breakdown}"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int) -> str:
    """Machine-readable report; parse with ``json.loads``."""
    return json.dumps(
        {
            "version": JSON_VERSION,
            "files_scanned": files_scanned,
            "findings": [f.to_dict() for f in sorted(findings)],
        },
        indent=2,
    )
