"""Numeric interval lattice for the abstract interpreter.

An :class:`Interval` is a closed range ``[lo, hi]`` over the extended
reals (``-inf``/``+inf`` mark unbounded ends), plus an explicit empty
element ``BOTTOM``.  The lattice order is inclusion: ``BOTTOM`` is the
least element, ``TOP = [-inf, +inf]`` the greatest, :meth:`Interval.join`
the convex hull, :meth:`Interval.meet` the intersection.

Because the interval lattice has infinite ascending chains
(``[0,0] ⊑ [0,1] ⊑ [0,2] ⊑ ...``), a loop fixpoint needs
:meth:`Interval.widen`: any bound that is still moving jumps straight to
infinity, so a widened sequence stabilises after at most two steps per
bound.  :meth:`Interval.narrow` recovers precision afterwards on a
bounded descending pass: it replaces only *infinite* bounds of the
widened result with the (sound) recomputed finite ones.

Arithmetic is the standard interval extension — monotone in both
arguments, with division splitting around zero.  All operations treat
``BOTTOM`` strictly (anything with ``BOTTOM`` is ``BOTTOM``).

The hypothesis suite (``tests/analysis/test_abstract_props.py``) pins
the algebra: join/meet commutative, associative and monotone, widening
reaching a fixpoint in bounded steps, arithmetic soundness against
concrete samples.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["Interval", "BOTTOM", "TOP"]

_INF = math.inf


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed numeric range ``[lo, hi]``; empty when ``lo > hi``."""

    lo: float
    hi: float

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        """The unknown value: ``[-inf, +inf]``."""
        return TOP

    @staticmethod
    def bottom() -> "Interval":
        """The empty (unreachable) value."""
        return BOTTOM

    @staticmethod
    def const(value: float) -> "Interval":
        """The singleton ``[value, value]``."""
        return Interval(float(value), float(value))

    @staticmethod
    def range(lo: float, hi: float) -> "Interval":
        """``[lo, hi]``, normalised to ``BOTTOM`` when empty."""
        if lo > hi:
            return BOTTOM
        return Interval(float(lo), float(hi))

    @staticmethod
    def nonneg() -> "Interval":
        """``[0, +inf]`` — the length/count shape of fact."""
        return Interval(0.0, _INF)

    # -- predicates --------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        """True for the empty interval."""
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        """True for ``[-inf, +inf]``."""
        return self.lo == -_INF and self.hi == _INF

    @property
    def is_const(self) -> bool:
        """True for a finite singleton."""
        return self.lo == self.hi and math.isfinite(self.lo)

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Lattice order: ``other ⊑ self`` (inclusion)."""
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the two ranges share at least one point."""
        return not self.meet(other).is_bottom

    # -- lattice operations ------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound: the convex hull of both ranges."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Greatest lower bound: the intersection."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval.range(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """``self ∇ other``: jump any still-moving bound to infinity.

        ``self`` is the previous loop-head fact, ``other`` the new one
        (already joined with ``self``).  A bound that grew past the old
        one is unstable and goes straight to ``±inf``; a stable bound is
        kept.  The result can only change twice per bound, which is what
        makes the interval analysis terminate without any visit budget.
        """
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = self.lo if other.lo >= self.lo else -_INF
        hi = self.hi if other.hi <= self.hi else _INF
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """``self Δ other``: refine infinite bounds with recomputed ones.

        ``self`` is the widened fact, ``other`` the fact recomputed from
        it on a descending pass.  Only a bound that widening pushed to
        infinity is replaced, so the descending sequence is bounded and
        never undoes a sound finite bound.
        """
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        lo = other.lo if self.lo == -_INF else self.lo
        hi = other.hi if self.hi == _INF else self.hi
        return Interval.range(lo, hi)

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        """Interval sum."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def sub(self, other: "Interval") -> "Interval":
        """Interval difference."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(_add(self.lo, -other.hi), _add(self.hi, -other.lo))

    def neg(self) -> "Interval":
        """Interval negation."""
        if self.is_bottom:
            return BOTTOM
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        """Interval product (min/max over the four corner products)."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        corners = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(corners), max(corners))

    def truediv(self, other: "Interval") -> "Interval":
        """Interval quotient; a divisor range containing 0 widens to TOP.

        Division by the exact singleton ``[0, 0]`` is ``BOTTOM`` (the
        path cannot complete normally); the *possibility* of a zero
        divisor is the checker's job (``BND001``), not the domain's.
        """
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if other.lo == 0.0 and other.hi == 0.0:
            return BOTTOM
        if other.contains(0.0):
            return TOP
        corners = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        """Interval floor-quotient (quotient, floored outward)."""
        result = self.truediv(other)
        if result.is_bottom or result.is_top:
            return result
        lo = math.floor(result.lo) if math.isfinite(result.lo) else result.lo
        hi = math.floor(result.hi) if math.isfinite(result.hi) else result.hi
        return Interval.range(lo, hi)

    def mod(self, other: "Interval") -> "Interval":
        """Interval of ``x % y`` for a positive divisor range; else TOP."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if other.lo == 0.0 and other.hi == 0.0:
            return BOTTOM
        if other.lo > 0.0:
            if math.isfinite(other.hi):
                # x % y < y always holds for y > 0, so the bound is
                # strict: step in by one ulp (values may be floats, so
                # tightening by a whole unit would be unsound).
                hi = math.nextafter(other.hi, -math.inf)
                return Interval(0.0, max(0.0, hi))
            return Interval.nonneg()
        return TOP

    def __str__(self) -> str:
        if self.is_bottom:
            return "[empty]"

        def fmt(bound: float) -> str:
            if bound == _INF:
                return "+inf"
            if bound == -_INF:
                return "-inf"
            if bound == int(bound):
                return str(int(bound))
            return f"{bound:g}"

        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


def _add(a: float, b: float) -> float:
    # inf + -inf never occurs on same-side bound sums of nonempty
    # intervals (lo+lo / hi+hi), but guard anyway: unknown beats NaN.
    try:
        result = a + b
    except OverflowError:  # pragma: no cover - floats saturate to inf
        return _INF if a > 0 else -_INF
    if math.isnan(result):
        return _INF if (a == _INF or b == _INF) else -_INF
    return result


def _mul(a: float, b: float) -> float:
    # 0 * inf is 0 for interval corners (the zero bound is exact).
    if a == 0.0 or b == 0.0:
        return 0.0
    result = a * b
    if math.isnan(result):  # pragma: no cover - corners are never nan/nan
        return 0.0
    return result


#: The empty interval (unreachable value).
BOTTOM = Interval(_INF, -_INF)

#: The unknown value.
TOP = Interval(-_INF, _INF)
