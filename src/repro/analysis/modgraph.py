"""Whole-program module index and import graph.

Everything the cross-file checkers (``arch``/``flow``/``dead``) share:

- :func:`module_name_for` maps a file path to its dotted module name by
  walking up through ``__init__.py`` package directories
  (``src/repro/sim/engine.py`` -> ``repro.sim.engine``; a standalone
  script keeps its bare stem);
- :class:`ModuleIndex` holds one :class:`ModuleInfo` per parsed source —
  resolved import edges (with *lazy* marking for function-scope and
  ``TYPE_CHECKING`` imports), top-level definitions, import-alias tables
  and the declared ``__all__``;
- :func:`resolve_symbol` chases a name through from-import/re-export
  chains to the module that actually defines it;
- :func:`strongly_connected_components` (Tarjan) powers the import-cycle
  check, and :func:`render_dot` emits the package-level graph for
  ``python -m repro.analysis --graph-dot``.

The index is built **once** per analysis run from the already-parsed
:class:`~repro.analysis.visitor.SourceFile` list — no file is read or
parsed a second time for the whole-program passes.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator

from .visitor import SourceFile

__all__ = [
    "ImportEdge",
    "ModuleIndex",
    "ModuleInfo",
    "SymbolDef",
    "build_index",
    "import_time_graph",
    "module_name_for",
    "render_dot",
    "resolve_callee",
    "resolve_symbol",
    "strongly_connected_components",
]


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One resolved import statement: ``module`` imports ``target``."""

    target: str
    lineno: int
    #: Function-scope or ``TYPE_CHECKING``-guarded: not executed at
    #: import time (exempt from cycle detection, still a dependency).
    lazy: bool


@dataclasses.dataclass(frozen=True)
class SymbolDef:
    """A top-level definition: function, class, or assigned constant."""

    name: str
    kind: str  # "function" | "class" | "constant"
    lineno: int
    col: int
    node: ast.AST = dataclasses.field(compare=False, hash=False, repr=False)


@dataclasses.dataclass
class ModuleInfo:
    """One module's whole-program view: imports, definitions, bindings."""

    name: str
    source: SourceFile
    is_package: bool
    #: False for usage-only context modules (tests) that are indexed for
    #: reachability but not themselves linted.
    is_target: bool
    imports: list[ImportEdge] = dataclasses.field(default_factory=list)
    #: top-level def/class/constant name -> SymbolDef.
    defs: dict[str, SymbolDef] = dataclasses.field(default_factory=dict)
    #: local name -> (source module, symbol name) from ``from m import s``.
    imported_symbols: dict[str, tuple[str, str]] = dataclasses.field(
        default_factory=dict
    )
    #: local name -> dotted module from ``import m [as a]`` / ``from p import m``.
    imported_modules: dict[str, str] = dataclasses.field(default_factory=dict)
    #: modules star-imported (``from m import *``).
    star_imports: list[str] = dataclasses.field(default_factory=list)
    #: names declared in ``__all__`` -> lineno of the string literal.
    exports: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted package containing this module (itself, if a package)."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    @property
    def basename(self) -> str:
        """Last dotted component (``cli``, ``__main__``, ``engine``)."""
        return self.name.rpartition(".")[2]


def module_name_for(path: str | Path) -> str:
    """Dotted module name of ``path``, by walking package directories."""
    path = Path(path).resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class ModuleIndex:
    """Name -> :class:`ModuleInfo` for every parsed source in the run."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, str] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def get(self, name: str) -> ModuleInfo | None:
        """The module named ``name``, or ``None`` when outside the index."""
        return self.modules.get(name)

    def targets(self) -> Iterator[ModuleInfo]:
        """Modules that are lint targets (not usage-only context)."""
        return (m for m in self.modules.values() if m.is_target)

    def add(self, info: ModuleInfo) -> None:
        """Register ``info`` under its dotted name and file path."""
        self.modules[info.name] = info
        self.by_path[info.source.path] = info.name


# -- index construction ----------------------------------------------------


def build_index(
    sources: Iterable[SourceFile],
    context: Iterable[SourceFile] = (),
) -> ModuleIndex:
    """Index every source (lint targets + usage-only context) once."""
    index = ModuleIndex()
    for is_target, group in ((True, sources), (False, context)):
        for source in group:
            name = module_name_for(source.path)
            if name in index.modules:
                continue
            index.add(
                ModuleInfo(
                    name=name,
                    source=source,
                    is_package=Path(source.path).name == "__init__.py",
                    is_target=is_target,
                )
            )
    for info in index.modules.values():
        _extract(info, index)
    return index


def _extract(info: ModuleInfo, index: ModuleIndex) -> None:
    """Fill ``info``'s import edges, definitions and binding tables."""
    _collect_defs(info)
    for node, lazy in _walk_imports(info.source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.imports.append(
                    ImportEdge(target=alias.name, lineno=node.lineno, lazy=lazy)
                )
                if alias.asname:
                    info.imported_modules[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the *root* name ``a``.
                    root = alias.name.split(".", 1)[0]
                    info.imported_modules.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    info.imports.append(
                        ImportEdge(target=base, lineno=node.lineno, lazy=lazy)
                    )
                    info.star_imports.append(base)
                    continue
                submodule = f"{base}.{alias.name}" if base else alias.name
                local = alias.asname or alias.name
                if submodule in index:
                    info.imports.append(
                        ImportEdge(
                            target=submodule, lineno=node.lineno, lazy=lazy
                        )
                    )
                    info.imported_modules[local] = submodule
                else:
                    info.imports.append(
                        ImportEdge(target=base, lineno=node.lineno, lazy=lazy)
                    )
                    info.imported_symbols[local] = (base, alias.name)


def _resolve_from_base(info: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base of a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    # Relative: level 1 is the containing package, each extra level one up.
    package_parts = info.package.split(".") if info.package else []
    drop = node.level - 1
    if drop > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - drop]
    if node.module:
        base_parts.extend(node.module.split("."))
    return ".".join(base_parts) if base_parts else None


def _collect_defs(info: ModuleInfo) -> None:
    """Record top-level definitions and the declared ``__all__``."""
    for stmt in info.source.tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
            info.defs[stmt.name] = SymbolDef(
                name=stmt.name,
                kind=kind,
                lineno=stmt.lineno,
                col=stmt.col_offset,
                node=stmt,
            )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    info.defs.setdefault(
                        target.id,
                        SymbolDef(
                            name=target.id,
                            kind="constant",
                            lineno=stmt.lineno,
                            col=stmt.col_offset,
                            node=stmt,
                        ),
                    )
    for stmt in info.source.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, (ast.List, ast.Tuple)):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    info.exports[elt.value] = elt.lineno


def _walk_imports(
    tree: ast.Module,
) -> Iterator[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Yield every import with a flag for lazy (non-import-time) context."""
    stack: list[tuple[ast.AST, bool]] = [(stmt, False) for stmt in tree.body]
    while stack:
        node, lazy = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node, lazy
            continue
        child_lazy = lazy
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            child_lazy = True
        elif isinstance(node, ast.If) and _is_type_checking(node.test):
            child_lazy = True
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_lazy))


def _is_type_checking(test: ast.AST) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


# -- symbol resolution -----------------------------------------------------


def resolve_symbol(
    index: ModuleIndex,
    module: str,
    name: str,
    _seen: frozenset[tuple[str, str]] = frozenset(),
) -> tuple[ModuleInfo, SymbolDef] | None:
    """Find the module that *defines* ``name`` visible from ``module``.

    Chases from-import and star-import re-export chains (``repro.hw``'s
    ``__init__`` re-exporting ``fast_adder`` from ``.gates`` resolves to
    the ``gates`` definition).  Returns ``None`` for anything the index
    cannot see (builtins, third-party modules, dynamic attributes).
    """
    info = index.get(module)
    if info is None or (module, name) in _seen:
        return None
    seen = _seen | {(module, name)}
    symbol = info.defs.get(name)
    if symbol is not None:
        return info, symbol
    imported = info.imported_symbols.get(name)
    if imported is not None:
        return resolve_symbol(index, imported[0], imported[1], seen)
    submodule = f"{module}.{name}" if info.is_package else None
    if submodule and submodule in index:
        return None  # a submodule, not a symbol
    for star in info.star_imports:
        resolved = resolve_symbol(index, star, name, seen)
        if resolved is not None:
            return resolved
    return None


def resolve_callee(
    index: ModuleIndex,
    info: ModuleInfo,
    func: ast.AST,
    shadowed: frozenset[str] = frozenset(),
) -> tuple[ModuleInfo, SymbolDef] | None:
    """Resolve a call's ``func`` expression to its defining module/symbol.

    Handles bare names bound by from-imports, dotted attribute chains
    through module aliases (``jobs.runner.simulate_network``), and local
    definitions.  ``shadowed`` names (function params / local assignments)
    are never resolved.
    """
    if isinstance(func, ast.Name):
        if func.id in shadowed:
            return None
        return resolve_symbol(index, info.name, func.id)
    if isinstance(func, ast.Attribute):
        chain = _attribute_chain(func)
        if chain is None:
            return None
        head, *rest = chain
        if head in shadowed:
            return None
        base = info.imported_modules.get(head)
        if base is None:
            return None
        # Walk as deep into submodules as the index allows; the first
        # component that is not a submodule must be the symbol.
        for i, part in enumerate(rest):
            deeper = f"{base}.{part}"
            if deeper in index:
                base = deeper
                continue
            if i == len(rest) - 1:
                return resolve_symbol(index, base, part)
            return None
        return None
    return None


def _attribute_chain(node: ast.Attribute) -> list[str] | None:
    parts: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


# -- graph algorithms ------------------------------------------------------


def import_time_graph(index: ModuleIndex) -> dict[str, set[str]]:
    """Module-level import-time dependency graph (lazy edges excluded).

    ``from a.b.c import x`` depends on ``a.b.c`` *and* on the package
    ``__init__`` chain ``a``/``a.b`` — except the importer's own ancestor
    packages, which Python guarantees are already (partially) initialised.
    """
    graph: dict[str, set[str]] = {name: set() for name in index.modules}
    for info in index.modules.values():
        own_ancestors = _ancestors(info.name)
        if info.is_package:
            own_ancestors = own_ancestors | {info.name}
        for edge in info.imports:
            if edge.lazy:
                continue
            for target in (edge.target, *_ancestors(edge.target)):
                if target in index and target not in own_ancestors:
                    graph[info.name].add(target)
    return graph


def _ancestors(name: str) -> set[str]:
    parts = name.split(".")
    return {".".join(parts[:i]) for i in range(1, len(parts))}


def strongly_connected_components(
    graph: dict[str, set[str]],
) -> list[list[str]]:
    """Tarjan's SCC; returns only non-trivial components (size >= 2)."""
    order: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    def visit(root: str) -> None:
        nonlocal counter
        # Iterative Tarjan: (node, iterator) frames.
        work = [(root, iter(sorted(graph.get(root, ()))))]
        order[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in order:
                    order[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], order[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == order[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for name in sorted(graph):
        if name not in order:
            visit(name)
    return sorted(components)


# -- DOT export ------------------------------------------------------------


def render_dot(
    index: ModuleIndex,
    layers: Iterable[tuple[str, tuple[str, ...]]],
    package_of,
    violations: set[tuple[str, str]] = frozenset(),
) -> str:
    """Package-level import graph as Graphviz DOT, clustered by layer.

    ``package_of`` maps a dotted module name to its layer-spec package key
    (or ``None`` for out-of-scope modules); edges in ``violations`` (as
    ``(from_pkg, to_pkg)`` pairs) are drawn red.
    """
    edges: dict[tuple[str, str], int] = {}
    seen_packages: set[str] = set()
    for info in index.modules.values():
        src_pkg = package_of(info.name)
        if src_pkg is None:
            continue
        seen_packages.add(src_pkg)
        for edge in info.imports:
            if edge.target not in index:
                continue
            dst_pkg = package_of(edge.target)
            if dst_pkg is None or dst_pkg == src_pkg:
                continue
            seen_packages.add(dst_pkg)
            edges[(src_pkg, dst_pkg)] = edges.get((src_pkg, dst_pkg), 0) + 1
    lines = [
        "digraph repro_imports {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    declared: set[str] = set()
    for i, (layer_name, packages) in enumerate(layers):
        members = [p for p in packages if p in seen_packages]
        declared.update(packages)
        if not members:
            continue
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{layer_name}";')
        lines.append("    style=rounded;")
        for pkg in members:
            lines.append(f'    "{pkg}";')
        lines.append("  }")
    for pkg in sorted(seen_packages - declared):
        lines.append(f'  "{pkg}" [color=orange];  // undeclared')
    for (src_pkg, dst_pkg), count in sorted(edges.items()):
        attrs = [f'label="{count}"']
        if (src_pkg, dst_pkg) in violations:
            attrs.append("color=red")
            attrs.append("penwidth=2")
        lines.append(f'  "{src_pkg}" -> "{dst_pkg}" [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
