"""Config-invariant checker (``CFG*``).

Configuration objects — every ``*Config``/``*Params`` dataclass
(``ArrayConfig``, ``GemmParams``, ``MemoryConfig``) — are the contract
surface between the CLI, the sweep drivers and the simulator.  This pass
enforces the contract shape statically:

- ``CFG001`` — a config dataclass must declare a ``validate()`` method
  raising ``ValueError`` with field-specific messages (the runtime side
  of the contract; ``simulate_layer`` calls it at entry);
- ``CFG002`` — config dataclasses must be ``frozen=True`` (a mutated
  config mid-sweep silently invalidates every cached result);
- ``CFG003`` — ``validate()`` must be wired into ``__post_init__`` so a
  nonsensical config cannot even be constructed;
- ``CFG004`` — a dataclass field with a physical-unit suffix must not
  declare a negative literal default (there is no negative area, energy
  or byte count).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .units import parse_unit
from .visitor import Checker, SourceFile

__all__ = ["ConfigChecker"]

_CONFIG_NAME_SUFFIXES = ("Config", "Params")


def _dataclass_decorator(node: ast.ClassDef) -> ast.AST | None:
    """The ``@dataclass``/``@dataclasses.dataclass`` decorator, if any."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return deco
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for kw in decorator.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _calls_self_validate(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "validate"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return True
    return False


def _negative_literal(node: ast.AST | None) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    )


class ConfigChecker(Checker):
    """Enforce the frozen-dataclass + validate() contract on config classes."""

    name = "cfg"
    codes = {
        "CFG001": "config dataclass lacks a validate() method",
        "CFG002": "config dataclass is not frozen",
        "CFG003": "validate() is not called from __post_init__",
        "CFG004": "unit-suffixed field declares a negative literal default",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            yield from self._check_fields(source, node)
            if not node.name.endswith(_CONFIG_NAME_SUFFIXES):
                continue
            if not _is_frozen(decorator):
                yield self.finding(
                    source,
                    node,
                    "CFG002",
                    f"config dataclass {node.name} must be frozen=True",
                )
            validate = _method(node, "validate")
            if validate is None:
                yield self.finding(
                    source,
                    node,
                    "CFG001",
                    f"config dataclass {node.name} must declare validate() "
                    "raising ValueError on impossible values",
                )
                continue
            post_init = _method(node, "__post_init__")
            if post_init is None or not _calls_self_validate(post_init):
                yield self.finding(
                    source,
                    node,
                    "CFG003",
                    f"{node.name}.__post_init__ must call self.validate() so "
                    "invalid configs fail at construction",
                )

    def _check_fields(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            unit = parse_unit(stmt.target.id)
            if unit is None:
                continue
            if _negative_literal(stmt.value):
                yield self.finding(
                    source,
                    stmt,
                    "CFG004",
                    f"field {stmt.target.id!r} carries unit "
                    f"{unit.describe()} but defaults to a negative value",
                )
