"""Interprocedural abstract interpreter: intervals + symbolic shapes.

This module turns the per-function dataflow machinery of
``repro.analysis.cfg``/``dataflow`` into a whole-program abstract
interpreter over two domains at once:

- the numeric **interval lattice** (:mod:`repro.analysis.intervals`) for
  every local scalar — constants, ``len()`` facts, arithmetic,
  comparisons refining each branch via ``CFG.cond_edges``;
- the **symbolic shape domain** (:mod:`repro.analysis.shapes`) for every
  local ndarray — ``np.zeros``/``reshape``/``transpose``/``matmul``/
  ``concatenate``/``stack``/broadcasting and basic slicing.

Loop heads apply :meth:`~repro.analysis.intervals.Interval.widen` to the
incoming fact, so the analysis terminates on the infinite-height
interval lattice *without* ever leaning on :func:`~repro.analysis.dataflow.solve`'s
damping budget (the regression test pins ``SolveStats.damped == 0``); a
bounded descending pass then uses
:meth:`~repro.analysis.intervals.Interval.narrow` to recover finite
bounds that widening threw to infinity.

Facts flow across calls through a bottom-up **summary cache**
(:class:`Interpreter`): an in-project callee resolved via ``modgraph``
is analysed once, its joined return value is externalised to
``param:<name>`` symbols, and call sites substitute the abstract
arguments — dataclass constructors bind their field values to
``obj.field`` pseudo-locals, like the FLOW checker's signature model.
Recursive cycles fall back to ⊤, which keeps the cache computation a
finite bottom-up pass over the call graph.

The ``shape`` (:mod:`repro.analysis.shapecheck`) and ``bound``
(:mod:`repro.analysis.bounds`) checkers evaluate expressions against the
post-fixpoint environments exposed here and report only **provable**
conflicts — the interpreter prefers silence to a false positive.
"""

from __future__ import annotations

import ast
import dataclasses
import math
import weakref
from typing import Any, Iterator

from .cfg import BasicBlock, build_cfg
from .dataflow import _NP_ARRAY_FUNCS, DataflowAnalysis, SolveStats, solve
from .intervals import BOTTOM, TOP, Interval
from .modgraph import ModuleIndex, ModuleInfo, SymbolDef, resolve_callee
from .shapes import (
    Dim,
    Shape,
    broadcast,
    concatenate,
    matmul,
    reshape,
    stack,
    transpose,
)

__all__ = [
    "AbsValue",
    "FunctionAnalysis",
    "FunctionSummary",
    "Interpreter",
    "IntervalProblem",
    "interpreter_for",
    "join_env",
    "narrow_env",
    "widen_env",
]


# -- the combined abstract value ------------------------------------------


@dataclasses.dataclass(frozen=True)
class AbsValue:
    """One abstract value: numeric range, optional shape, optional symbol.

    ``shape`` is ``None`` for a definite non-array and for a complete
    unknown; an array fact always carries a shape (``Shape.top()`` when
    only arrayness is known).  ``sym`` names a value that is equal to
    itself across occurrences (``param:oc``, ``cfg.rows``) even when the
    numeric range is unknown.  ``tup`` holds the element values of a
    tuple/list literal, so ``np.zeros((r, c))`` sees its extents.
    """

    ival: Interval = TOP
    shape: Shape | None = None
    sym: str | None = None
    tup: tuple["AbsValue", ...] | None = None

    @staticmethod
    def top() -> "AbsValue":
        """The unknown value."""
        return _TOP_VALUE

    @staticmethod
    def of_interval(ival: Interval, sym: str | None = None) -> "AbsValue":
        """A scalar fact."""
        return AbsValue(ival=ival, sym=sym)

    @staticmethod
    def of_shape(shape: Shape) -> "AbsValue":
        """An array fact."""
        return AbsValue(ival=TOP, shape=shape)

    @property
    def is_array(self) -> bool:
        """True when the value is known to be an ndarray."""
        return self.shape is not None

    @property
    def is_top(self) -> bool:
        """True when nothing at all is known."""
        return (
            self.ival.is_top
            and self.shape is None
            and self.sym is None
            and self.tup is None
        )

    def join(self, other: "AbsValue") -> "AbsValue":
        """Least upper bound across all components."""
        if self.ival.is_bottom:
            return other
        if other.ival.is_bottom:
            return self
        shape: Shape | None
        if self.shape is not None and other.shape is not None:
            shape = self.shape.join(other.shape)
        else:
            shape = None
        tup: tuple[AbsValue, ...] | None = None
        if (
            self.tup is not None
            and other.tup is not None
            and len(self.tup) == len(other.tup)
        ):
            tup = tuple(a.join(b) for a, b in zip(self.tup, other.tup))
        return AbsValue(
            ival=self.ival.join(other.ival),
            shape=shape,
            sym=self.sym if self.sym == other.sym else None,
            tup=tup,
        )

    def widen(self, other: "AbsValue") -> "AbsValue":
        """Widen every numeric component (shape dims and tuples too)."""
        joined = self.join(other)
        shape = joined.shape
        if self.shape is not None and shape is not None:
            shape = _widen_shape(self.shape, shape)
        tup = joined.tup
        if self.tup is not None and tup is not None:
            tup = tuple(a.widen(b) for a, b in zip(self.tup, tup))
        return dataclasses.replace(
            joined, ival=self.ival.widen(joined.ival), shape=shape, tup=tup
        )

    def narrow(self, other: "AbsValue") -> "AbsValue":
        """Recover the infinite bounds widening introduced."""
        return dataclasses.replace(self, ival=self.ival.narrow(other.ival))

    def meet_interval(self, ival: Interval) -> "AbsValue":
        """Refine the numeric range (branch refinement)."""
        return dataclasses.replace(self, ival=self.ival.meet(ival))

    def as_dim(self) -> Dim:
        """This scalar as one shape axis."""
        return Dim(ival=self.ival.meet(Interval.nonneg()), sym=self.sym)

    def __str__(self) -> str:
        if self.shape is not None:
            return f"ndarray{self.shape}"
        return str(self.ival)


_TOP_VALUE = AbsValue()


def _widen_shape(prev: Shape, new: Shape) -> Shape:
    if prev.dims is None or new.dims is None:
        return Shape.top()
    if len(prev.dims) != len(new.dims):
        return Shape.top()
    return Shape(
        dims=tuple(
            Dim(ival=a.ival.widen(b.ival), sym=b.sym)
            for a, b in zip(prev.dims, new.dims)
        )
    )


# -- environments ----------------------------------------------------------

Env = dict  # str -> AbsValue; a missing key is ⊤.


def join_env(a: Env, b: Env) -> Env:
    """Key-wise join; a key absent on either side is ⊤ and drops out."""
    out: Env = {}
    for name, value in a.items():
        other = b.get(name)
        if other is None:
            continue
        joined = value.join(other)
        if not joined.is_top:
            out[name] = joined
    return out


def widen_env(prev: Env, new: Env) -> Env:
    """Key-wise widening against the previous loop-head fact."""
    out: Env = {}
    for name, value in prev.items():
        other = new.get(name)
        if other is None:
            continue
        widened = value.widen(other)
        if not widened.is_top:
            out[name] = widened
    return out


def narrow_env(widened: Env, recomputed: Env) -> Env:
    """Key-wise narrowing of a widened fact by a descending recompute."""
    out: Env = dict(widened)
    for name, value in widened.items():
        other = recomputed.get(name)
        if other is not None:
            out[name] = value.narrow(other)
    return out


# -- the dataflow problem --------------------------------------------------


class IntervalProblem(DataflowAnalysis):
    """Forward interval+shape propagation with loop-head widening.

    The transfer delegates to an :class:`Interpreter` for expression
    evaluation (so in-project call summaries apply); ``edge_transfer``
    refines the fact by the branch condition recorded in
    ``CFG.cond_edges``.  Widening happens *inside* the transfer at loop
    heads, which is what keeps :func:`solve`'s damping budget untouched.
    """

    direction = "forward"

    def __init__(self, analysis: "FunctionAnalysis") -> None:
        self._fa = analysis
        self._cfg = analysis.cfg
        self._heads = {loop.head for loop in analysis.cfg.loops}
        self._head_prev: dict[int, Env] = {}

    def boundary(self) -> Env:
        return dict(self._fa.entry_env)

    def initial(self) -> Env:
        return {}

    def join(self, a: Env, b: Env) -> Env:
        return join_env(a, b)

    def transfer(self, block: BasicBlock, fact: Env) -> Env:
        if block.bid in self._heads:
            prev = self._head_prev.get(block.bid)
            if prev is not None:
                fact = widen_env(prev, join_env(prev, fact))
            self._head_prev[block.bid] = dict(fact)
        env = dict(fact)
        for stmt in block.stmts:
            self._fa.step(stmt, env)
        return env

    def edge_transfer(self, src: BasicBlock, dst: int, fact: Env) -> Env:
        polarity = self._cfg.cond_edges.get((src.bid, dst))
        if polarity is None or not src.stmts:
            return fact
        stmt = src.stmts[-1]
        if isinstance(stmt, (ast.If, ast.While)):
            return self._fa.refine(dict(fact), stmt.test, polarity)
        return fact


# -- per-function analysis -------------------------------------------------

#: numpy constructors taking a shape as their first argument.
_NP_SHAPE_CTORS = {"zeros", "ones", "empty", "full"}
#: numpy constructors copying the argument's shape.
_NP_LIKE_CTORS = {"zeros_like", "ones_like", "empty_like", "full_like"}
#: array methods that are shape-preserving.
_SHAPE_PRESERVING_METHODS = {"astype", "copy", "clip", "round", "view"}

_NARROWING_PASSES = 2


class FunctionAnalysis:
    """Post-fixpoint interval/shape environments of one function."""

    def __init__(
        self,
        interp: "Interpreter",
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.interp = interp
        self.info = info
        self.func = func
        self.cfg = build_cfg(func)
        self.entry_env = self._param_env()
        self.stats = SolveStats()
        self.problem = IntervalProblem(self)
        problem = self.problem
        solution = solve(self.cfg, problem, stats=self.stats)
        self.block_in: dict[int, Env] = {
            bid: pair[0] for bid, pair in solution.items()
        }
        self._block_out: dict[int, Env] = {
            bid: pair[1] for bid, pair in solution.items()
        }
        self._narrow(problem)

    # -- setup -----------------------------------------------------------

    def _param_env(self) -> Env:
        env: Env = {}
        args = self.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            env[arg.arg] = self._param_value(arg)
        return env

    def _param_value(self, arg: ast.arg) -> AbsValue:
        sym = f"param:{arg.arg}"
        ann = arg.annotation
        if _annotation_is_array(ann):
            return AbsValue(ival=TOP, shape=Shape.top(), sym=sym)
        return AbsValue(ival=TOP, sym=sym)

    def _narrow(self, problem: IntervalProblem) -> None:
        """Bounded descending passes recovering widened bounds."""
        order = sorted(self.cfg.blocks)
        for _ in range(_NARROWING_PASSES):
            changed = False
            for bid in order:
                if bid == self.cfg.entry:
                    continue
                block = self.cfg.blocks[bid]
                fact: Env | None = None
                for pred in block.preds:
                    along = problem.edge_transfer(
                        self.cfg.blocks[pred], bid, self._block_out[pred]
                    )
                    fact = along if fact is None else join_env(fact, along)
                if fact is None:
                    continue
                narrowed = narrow_env(self.block_in[bid], fact)
                if narrowed != self.block_in[bid]:
                    self.block_in[bid] = narrowed
                    changed = True
                env = dict(narrowed)  # repro-lint: ignore[perf]
                for stmt in block.stmts:
                    self.step(stmt, env)
                if env != self._block_out[bid]:
                    self._block_out[bid] = env
                    changed = True
            if not changed:
                break

    # -- queries ---------------------------------------------------------

    def env_before(self, bid: int, index: int) -> Env:
        """The environment just before statement ``index`` of block ``bid``."""
        env = dict(self.block_in.get(bid, {}))
        for stmt in self.cfg.blocks[bid].stmts[:index]:
            self.step(stmt, env)
        return env

    def statements(self) -> Iterator[tuple[ast.stmt, Env]]:
        """Every shallow statement with the environment before it."""
        for bid in sorted(self.cfg.blocks):
            env = dict(self.block_in.get(bid, {}))
            for stmt in self.cfg.blocks[bid].stmts:
                # Each yielded env is a defensive snapshot: step() mutates.
                yield stmt, dict(env)  # repro-lint: ignore[perf]
                self.step(stmt, env)

    def return_value(self) -> AbsValue:
        """Join of every ``return`` expression's abstract value."""
        result: AbsValue | None = None
        for stmt, env in self.statements():
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = self.eval(stmt.value, env)
                result = value if result is None else result.join(value)
        return result if result is not None else AbsValue.top()

    # -- transfer --------------------------------------------------------

    def step(self, stmt: ast.stmt, env: Env) -> None:
        """Mutate ``env`` with the effect of one shallow statement."""
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval(stmt.value, env)
            self._bind(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, AbsValue.top())
                operand = self.eval(stmt.value, env)
                env[stmt.target.id] = self._binop(
                    stmt.op, current, operand, env
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars, None, AbsValue.top(), env
                    )
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            env.pop(stmt.name, None)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                env.pop(alias.asname or alias.name.partition(".")[0], None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _bind(
        self,
        target: ast.AST,
        value_expr: ast.expr | None,
        value: AbsValue,
        env: Env,
    ) -> None:
        if isinstance(target, ast.Name):
            _drop_attrs(env, target.id)
            if value.is_top:
                env.pop(target.id, None)
            else:
                env[target.id] = value
            if isinstance(value_expr, ast.Constant) and isinstance(
                value_expr.value, (str, bytes)
            ):
                env[f"len({target.id})"] = AbsValue.of_interval(
                    Interval.const(len(value_expr.value))
                )
            if value_expr is not None:
                self._bind_ctor_fields(target.id, value_expr, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = value.tup
            for i, elt in enumerate(target.elts):
                element = (
                    elements[i]
                    if elements is not None and i < len(elements)
                    and not isinstance(elt, ast.Starred)
                    else AbsValue.top()
                )
                self._bind(elt, None, element, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, AbsValue.top(), env)
        elif isinstance(target, ast.Attribute):
            key = _attr_key(target)
            if key is not None:
                if value.is_top:
                    env.pop(key, None)
                else:
                    env[key] = value

    def _bind_ctor_fields(
        self, name: str, value_expr: ast.expr, env: Env
    ) -> None:
        """``x = Ctor(...)``: bind ``x.field`` pseudo-locals for fields."""
        if not isinstance(value_expr, ast.Call):
            return
        fields = self.interp.ctor_fields(self.info, value_expr, env, self)
        for field, value in fields.items():
            if not value.is_top:
                env[f"{name}.{field}"] = value

    def _bind_loop_target(
        self, stmt: ast.For | ast.AsyncFor, env: Env
    ) -> None:
        element = AbsValue.top()
        iterable = stmt.iter
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and not iterable.keywords
        ):
            element = AbsValue.of_interval(self._range_interval(iterable, env))
        elif isinstance(iterable, (ast.Tuple, ast.List)) and iterable.elts:
            values = [self.eval(e, env) for e in iterable.elts]
            element = values[0]
            for value in values[1:]:
                element = element.join(value)
        self._bind(stmt.target, None, element, env)

    def _range_interval(self, call: ast.Call, env: Env) -> Interval:
        args = [self.eval(a, env).ival for a in call.args]
        if not args or any(a.is_bottom for a in args):
            return TOP
        if len(args) == 1:
            start, stop, step = Interval.const(0), args[0], Interval.const(1)
        elif len(args) == 2:
            start, stop, step = args[0], args[1], Interval.const(1)
        else:
            start, stop, step = args[0], args[1], args[2]
        if step.lo > 0:
            return Interval.range(start.lo, stop.hi - 1.0)
        if step.hi < 0:
            return Interval.range(stop.lo + 1.0, start.hi)
        return Interval.range(
            min(start.lo, stop.lo + 1.0), max(start.hi, stop.hi - 1.0)
        )

    # -- branch refinement -----------------------------------------------

    def walk_refined(
        self, root: ast.AST, env: Env
    ) -> Iterator[tuple[ast.AST, Env]]:
        """Yield ``(node, env)`` for every node under ``root``.

        Unlike ``ast.walk``, conditional subexpressions see the
        branch-refined environment: the body of ``x / n if n else 0.0``
        is visited with ``n`` known nonzero, and the right operand of
        ``n and x / n`` with the left clause known truthy — so checkers
        evaluating subexpressions in the yielded env respect inline
        guards exactly as the statement-level CFG respects ``if``.
        """
        yield root, env
        if isinstance(root, ast.IfExp):
            yield from self.walk_refined(root.test, env)
            yield from self.walk_refined(
                root.body, self.refine(dict(env), root.test, True)
            )
            yield from self.walk_refined(
                root.orelse, self.refine(dict(env), root.test, False)
            )
            return
        if isinstance(root, ast.BoolOp):
            polarity = isinstance(root.op, ast.And)
            current = env
            for clause in root.values:
                yield from self.walk_refined(clause, current)
                current = self.refine(dict(current), clause, polarity)
            return
        for child in ast.iter_child_nodes(root):
            yield from self.walk_refined(child, env)

    def refine(self, env: Env, test: ast.expr, polarity: bool) -> Env:
        """Narrow ``env`` by ``test`` holding (or not holding)."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.refine(env, test.operand, not polarity)
        if isinstance(test, ast.BoolOp):
            conjunctive = isinstance(test.op, ast.And) == polarity
            if conjunctive:
                # `a and b` true, or `a or b` false: every clause known.
                for clause in test.values:
                    env = self.refine(env, clause, polarity)
            return env
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._refine_compare(
                env, test.left, test.ops[0], test.comparators[0], polarity
            )
        # Truthiness of a name / length: `if n:` excludes 0.  A truthy
        # container also has nonzero length, so the `len(key)` pseudo-key
        # is refined alongside — that is what proves `sum(xs) / len(xs)`
        # safe under an `if xs:` (or `... if xs else 0.0`) guard.
        key = self._refinement_key(test)
        if key is not None:
            if polarity:
                self._exclude_key(env, key, 0.0)
                if not key.startswith("len("):
                    self._exclude_key(env, f"len({key})", 0.0)
            else:
                self._meet_key(env, key, Interval.const(0))
                if not key.startswith("len("):
                    self._meet_key(env, f"len({key})", Interval.const(0))
        return env

    def _refine_compare(
        self,
        env: Env,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        polarity: bool,
    ) -> Env:
        if not polarity:
            flipped = _negate_op(op)
            if flipped is None:
                return env
            op = flipped
        left_key = self._refinement_key(left)
        right_key = self._refinement_key(right)
        left_ival = self.eval(left, env).ival
        right_ival = self.eval(right, env).ival
        if isinstance(op, ast.NotEq):
            # `!=` can only slice a point off an interval's endpoint.
            if left_key is not None and right_ival.is_const:
                self._exclude_key(env, left_key, right_ival.lo)
            if right_key is not None and left_ival.is_const:
                self._exclude_key(env, right_key, left_ival.lo)
            return env
        if left_key is not None:
            self._meet_key(env, left_key, _bound_by(op, right_ival, True))
        if right_key is not None:
            self._meet_key(env, right_key, _bound_by(op, left_ival, False))
        return env

    def _refinement_key(self, expr: ast.expr) -> str | None:
        """The env key a comparison can refine, if any."""
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return _attr_key(expr)
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "len"
            and len(expr.args) == 1
        ):
            inner = self._refinement_key(expr.args[0])
            return f"len({inner})" if inner is not None else None
        return None

    def _meet_key(self, env: Env, key: str, ival: Interval) -> None:
        current = self._current(env, key)
        refined = current.meet_interval(ival)
        if not refined.is_top:
            env[key] = refined

    def _exclude_key(self, env: Env, key: str, point: float) -> None:
        current = self._current(env, key)
        excluded = _exclude_point(current.ival, point)
        if not excluded.is_top:
            env[key] = dataclasses.replace(current, ival=excluded)

    @staticmethod
    def _current(env: Env, key: str) -> AbsValue:
        current = env.get(key)
        if current is not None:
            return current
        if key.startswith("len("):
            return AbsValue.of_interval(Interval.nonneg())
        return AbsValue.top()

    # -- expression evaluation -------------------------------------------

    def eval(self, expr: ast.expr, env: Env) -> AbsValue:
        """Abstract value of ``expr`` in ``env``."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return AbsValue.of_interval(Interval.const(int(expr.value)))
            if isinstance(expr.value, (int, float)):
                return AbsValue.of_interval(Interval.const(expr.value))
            return AbsValue.top()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, AbsValue.top())
        if isinstance(expr, (ast.Tuple, ast.List)):
            if any(isinstance(e, ast.Starred) for e in expr.elts):
                return AbsValue.top()
            return AbsValue(
                ival=TOP, tup=tuple(self.eval(e, env) for e in expr.elts)
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            # A single unconditional generator over a literal sequence
            # yields exactly one element per literal — enough to prove
            # the length of `[f(c) for c in ("a", "b", "c")]`.
            if (
                len(expr.generators) == 1
                and not expr.generators[0].ifs
                and not expr.generators[0].is_async
                and isinstance(expr.generators[0].iter, (ast.Tuple, ast.List))
                and not any(
                    isinstance(e, ast.Starred)
                    for e in expr.generators[0].iter.elts
                )
            ):
                return AbsValue(
                    ival=TOP,
                    tup=tuple(
                        AbsValue.top() for _ in expr.generators[0].iter.elts
                    ),
                )
            return AbsValue.top()
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval(expr.operand, env)
            if isinstance(expr.op, ast.USub):
                return AbsValue.of_interval(operand.ival.neg())
            if isinstance(expr.op, ast.UAdd):
                return operand
            if isinstance(expr.op, ast.Not):
                return AbsValue.of_interval(Interval.range(0, 1))
            return AbsValue.top()
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return self._binop(expr.op, left, right, env)
        if isinstance(expr, ast.BoolOp):
            values = [self.eval(v, env) for v in expr.values]
            result = values[0]
            for value in values[1:]:
                result = result.join(value)
            return result
        if isinstance(expr, ast.Compare):
            return AbsValue.of_interval(Interval.range(0, 1))
        if isinstance(expr, ast.IfExp):
            then_env = self.refine(dict(env), expr.test, True)
            else_env = self.refine(dict(env), expr.test, False)
            return self.eval(expr.body, then_env).join(
                self.eval(expr.orelse, else_env)
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        return AbsValue.top()

    def _binop(
        self, op: ast.operator, left: AbsValue, right: AbsValue, env: Env
    ) -> AbsValue:
        if isinstance(op, ast.MatMult):
            if left.is_array and right.is_array:
                result, _ = matmul(left.shape, right.shape)
                return AbsValue.of_shape(result)
            return AbsValue.top()
        if left.is_array or right.is_array:
            a = left.shape if left.shape is not None else Shape(dims=())
            b = right.shape if right.shape is not None else Shape(dims=())
            result, _ = broadcast(a, b)
            return AbsValue.of_shape(result)
        a, b = left.ival, right.ival
        if isinstance(op, ast.Add):
            return AbsValue.of_interval(a.add(b))
        if isinstance(op, ast.Sub):
            return AbsValue.of_interval(a.sub(b))
        if isinstance(op, ast.Mult):
            return AbsValue.of_interval(a.mul(b))
        if isinstance(op, ast.Div):
            return AbsValue.of_interval(a.truediv(b))
        if isinstance(op, ast.FloorDiv):
            return AbsValue.of_interval(a.floordiv(b))
        if isinstance(op, ast.Mod):
            return AbsValue.of_interval(a.mod(b))
        if isinstance(op, ast.Pow):
            if b.is_const and b.lo >= 0 and a.lo >= 0:
                hi = a.hi ** b.lo if a.hi != math.inf else math.inf
                return AbsValue.of_interval(
                    Interval.range(a.lo ** b.lo, hi)
                )
            return AbsValue.top()
        return AbsValue.top()

    # -- calls -----------------------------------------------------------

    def _eval_call(self, call: ast.Call, env: Env) -> AbsValue:
        func = call.func
        if isinstance(func, ast.Name):
            builtin = self._eval_builtin(func.id, call, env)
            if builtin is not None:
                return builtin
        if isinstance(func, ast.Attribute):
            method = self._eval_method(func, call, env)
            if method is not None:
                return method
        return self.interp.call_value(self.info, call, env, self)

    def _eval_builtin(
        self, name: str, call: ast.Call, env: Env
    ) -> AbsValue | None:
        args = call.args
        if name == "len" and len(args) == 1 and not call.keywords:
            value = self.eval(args[0], env)
            if value.tup is not None:
                return AbsValue.of_interval(Interval.const(len(value.tup)))
            if value.is_array and value.shape.dims:
                return AbsValue.of_interval(value.shape.dims[0].ival)
            key = self._refinement_key(call)
            if key is not None and key in env:
                return env[key]
            return AbsValue.of_interval(Interval.nonneg())
        if name == "abs" and len(args) == 1:
            ival = self.eval(args[0], env).ival
            if ival.is_bottom:
                return AbsValue.of_interval(BOTTOM)
            candidates = (abs(ival.lo), abs(ival.hi))
            lo = 0.0 if ival.contains(0.0) else min(candidates)
            return AbsValue.of_interval(Interval.range(lo, max(candidates)))
        if name in ("min", "max") and len(args) >= 2:
            ivals = [self.eval(a, env).ival for a in args]
            if any(v.is_bottom for v in ivals):
                return AbsValue.of_interval(BOTTOM)
            pick = min if name == "min" else max
            return AbsValue.of_interval(
                Interval.range(
                    pick(v.lo for v in ivals), pick(v.hi for v in ivals)
                )
            )
        if name in ("int", "float") and len(args) == 1:
            return AbsValue.of_interval(self.eval(args[0], env).ival)
        if name in ("bool",):
            return AbsValue.of_interval(Interval.range(0, 1))
        return None

    def _eval_method(
        self, func: ast.Attribute, call: ast.Call, env: Env
    ) -> AbsValue | None:
        base = func.value
        # numpy module functions through the import alias.
        if (
            isinstance(base, ast.Name)
            and base.id in self.interp.numpy_aliases(self.info)
        ):
            return self._eval_numpy(func.attr, call, env)
        base_value = self.eval(base, env)
        if not base_value.is_array:
            return None
        shape = base_value.shape
        if func.attr == "reshape":
            target = self.reshape_target(call.args, env)
            result, _ = reshape(shape, target)
            return AbsValue.of_shape(result)
        if func.attr == "transpose":
            axes = self._const_int_args(call, env)
            return AbsValue.of_shape(
                transpose(shape, tuple(axes) if axes else None)
            )
        if func.attr in ("ravel", "flatten"):
            return AbsValue.of_shape(
                Shape(dims=(Dim(ival=shape.size()),))
            )
        if func.attr in _SHAPE_PRESERVING_METHODS:
            return AbsValue.of_shape(shape)
        if func.attr in ("sum", "prod", "mean", "min", "max"):
            axis = _keyword(call, "axis")
            if axis is None and not call.args:
                return AbsValue.top()  # full reduction: a scalar
            return AbsValue.of_shape(Shape.top())
        if func.attr in ("tolist", "item"):
            return AbsValue.top()
        return None

    def _eval_numpy(
        self, attr: str, call: ast.Call, env: Env
    ) -> AbsValue | None:
        args = call.args
        if attr in _NP_SHAPE_CTORS and args:
            return AbsValue.of_shape(self.shape_from_arg(args[0], env))
        if attr in _NP_LIKE_CTORS and args:
            source = self.eval(args[0], env)
            return AbsValue.of_shape(
                source.shape if source.is_array else Shape.top()
            )
        if attr == "eye" and args:
            n = self.eval(args[0], env).as_dim()
            return AbsValue.of_shape(Shape(dims=(n, n)))
        if attr == "arange":
            ivals = [self.eval(a, env).ival for a in args]
            if len(ivals) == 1 and ivals[0].is_const:
                return AbsValue.of_shape(
                    Shape(dims=(Dim.const(max(0, int(ivals[0].lo))),))
                )
            return AbsValue.of_shape(Shape(dims=(Dim.top(),)))
        if attr == "linspace":
            num = _keyword(call, "num")
            if num is None and len(args) >= 3:
                num = args[2]
            if num is not None:
                return AbsValue.of_shape(
                    Shape(dims=(self.eval(num, env).as_dim(),))
                )
            return AbsValue.of_shape(Shape(dims=(Dim.const(50),)))
        if attr in ("concatenate", "stack", "vstack", "hstack") and args:
            shapes = self.sequence_shapes(args[0], env)
            if shapes is None:
                return AbsValue.of_shape(Shape.top())
            axis = self.axis_of(call, env, default=0)
            if attr == "stack":
                result, _ = stack(shapes, axis if axis is not None else 0)
            elif attr == "concatenate":
                result, _ = concatenate(
                    shapes, axis if axis is not None else 0
                )
            elif attr == "vstack":
                result, _ = concatenate(shapes, 0)
            else:  # hstack of >=1-D is concatenate on the last axis
                result, _ = concatenate(shapes, -1 if shapes else 0)
            return AbsValue.of_shape(result)
        if attr in ("matmul", "dot") and len(args) == 2:
            a = self.eval(args[0], env)
            b = self.eval(args[1], env)
            if a.is_array and b.is_array:
                result, _ = matmul(a.shape, b.shape)
                return AbsValue.of_shape(result)
            return AbsValue.top()
        if attr == "reshape" and len(args) >= 2:
            source = self.eval(args[0], env)
            if source.is_array:
                target = self.shape_from_arg(args[1], env)
                result, _ = reshape(source.shape, target)
                return AbsValue.of_shape(result)
            return AbsValue.of_shape(Shape.top())
        if attr == "transpose" and args:
            source = self.eval(args[0], env)
            if source.is_array:
                return AbsValue.of_shape(transpose(source.shape))
            return AbsValue.of_shape(Shape.top())
        if attr in ("array", "asarray", "ascontiguousarray") and args:
            source = self.eval(args[0], env)
            if source.is_array:
                return source
            if source.tup is not None:
                return AbsValue.of_shape(
                    Shape(dims=(Dim.const(len(source.tup)),))
                )
            return AbsValue.of_shape(Shape.top())
        if attr in _NP_ARRAY_FUNCS:
            return AbsValue.of_shape(Shape.top())
        return None

    # -- call helpers ----------------------------------------------------

    def shape_from_arg(self, arg: ast.expr, env: Env) -> Shape:
        """A shape argument: an int (1-D) or a tuple of extents."""
        value = self.eval(arg, env)
        if value.tup is not None:
            return Shape(dims=tuple(v.as_dim() for v in value.tup))
        if value.is_array:
            return Shape.top()
        if not value.ival.is_top or value.sym is not None:
            return Shape(dims=(value.as_dim(),))
        return Shape.top()

    def reshape_target(self, args: list[ast.expr], env: Env) -> Shape:
        """``a.reshape(t)`` / ``a.reshape(r, c)`` / a ``-1`` wildcard."""
        if len(args) == 1:
            return self.shape_from_arg(args[0], env)
        dims = []
        for arg in args:
            value = self.eval(arg, env)
            if value.ival.is_const and value.ival.lo == -1.0:
                dims.append(Dim.top())
            else:
                dims.append(value.as_dim())
        return Shape(dims=tuple(dims)) if dims else Shape.top()

    def _const_int_args(self, call: ast.Call, env: Env) -> list[int] | None:
        out = []
        for arg in call.args:
            value = self.eval(arg, env).ival
            if not value.is_const:
                return None
            out.append(int(value.lo))
        return out or None

    def sequence_shapes(
        self, arg: ast.expr, env: Env
    ) -> list[Shape] | None:
        if not isinstance(arg, (ast.Tuple, ast.List)):
            return None
        shapes = []
        for elt in arg.elts:
            value = self.eval(elt, env)
            if not value.is_array:
                return None
            shapes.append(value.shape)
        return shapes

    def axis_of(
        self, call: ast.Call, env: Env, default: int | None
    ) -> int | None:
        node = _keyword(call, "axis")
        if node is None and len(call.args) >= 2:
            node = call.args[1]
        if node is None:
            return default
        value = self.eval(node, env).ival
        return int(value.lo) if value.is_const else None

    # -- attributes / subscripts -----------------------------------------

    def _eval_attribute(self, expr: ast.Attribute, env: Env) -> AbsValue:
        base = self.eval(expr.value, env)
        if base.is_array:
            shape = base.shape
            if expr.attr == "T":
                return AbsValue.of_shape(transpose(shape))
            if expr.attr == "shape":
                if shape.dims is None:
                    return AbsValue.top()
                return AbsValue(
                    ival=TOP,
                    tup=tuple(
                        AbsValue(ival=d.ival, sym=d.sym) for d in shape.dims
                    ),
                )
            if expr.attr == "size":
                return AbsValue.of_interval(shape.size())
            if expr.attr == "ndim":
                if shape.rank is None:
                    return AbsValue.of_interval(Interval.nonneg())
                return AbsValue.of_interval(Interval.const(shape.rank))
        key = _attr_key(expr)
        if key is not None:
            known = env.get(key)
            if known is not None:
                return known
            return AbsValue(ival=TOP, sym=key)
        return AbsValue.top()

    def _eval_subscript(self, expr: ast.Subscript, env: Env) -> AbsValue:
        base = self.eval(expr.value, env)
        if base.tup is not None:
            index = self.eval(expr.slice, env).ival
            if index.is_const:
                i = int(index.lo)
                if -len(base.tup) <= i < len(base.tup):
                    return base.tup[i]
            return AbsValue.top()
        if base.is_array and base.shape.dims is not None:
            dims = base.shape.dims
            if isinstance(expr.slice, ast.Tuple):
                keys = expr.slice.elts
            else:
                keys = [expr.slice]
            remaining = list(dims)
            consumed = 0
            for key in keys:
                if isinstance(key, ast.Slice):
                    if consumed < len(remaining):
                        remaining[consumed] = Dim(
                            ival=remaining[consumed].ival.meet(
                                Interval.nonneg()
                            )
                        )
                    consumed += 1
                else:
                    if consumed < len(remaining):
                        del remaining[consumed]
                    else:
                        return AbsValue.top()
            if not remaining:
                return AbsValue.top()  # a scalar element
            return AbsValue.of_shape(Shape(dims=tuple(remaining)))
        return AbsValue.top()


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _drop_attrs(env: Env, name: str) -> None:
    """Rebinding ``name`` invalidates every dependent pseudo-local:
    ``name.field`` attribute facts and ``len(name)``/``len(name.field)``
    length facts alike."""
    prefix = f"{name}."
    length_prefix = f"len({name}."
    length_key = f"len({name})"
    for key in [
        k
        for k in env
        if k.startswith(prefix)
        or k == length_key
        or k.startswith(length_prefix)
    ]:
        del env[key]


def _attr_key(expr: ast.Attribute) -> str | None:
    parts: list[str] = []
    node: ast.AST = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_is_array(ann: ast.AST | None) -> bool:
    if ann is None:
        return False
    for node in ast.walk(ann):
        if isinstance(node, ast.Name) and node.id in ("ndarray", "NDArray"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "ndarray",
            "NDArray",
        ):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "ndarray" in node.value or "NDArray" in node.value:
                return True
    return False


def _negate_op(op: ast.cmpop) -> ast.cmpop | None:
    mapping: list[tuple[type, type]] = [
        (ast.Lt, ast.GtE),
        (ast.LtE, ast.Gt),
        (ast.Gt, ast.LtE),
        (ast.GtE, ast.Lt),
        (ast.Eq, ast.NotEq),
        (ast.NotEq, ast.Eq),
    ]
    for source, target in mapping:
        if isinstance(op, source):
            return target()
    return None


def _bound_by(op: ast.cmpop, other: Interval, is_left: bool) -> Interval:
    """The interval the refined side must lie in for ``op`` to hold."""
    if other.is_bottom:
        return TOP
    if not is_left:
        flipped = {
            ast.Lt: ast.Gt,
            ast.LtE: ast.GtE,
            ast.Gt: ast.Lt,
            ast.GtE: ast.LtE,
        }.get(type(op))
        if flipped is not None:
            op = flipped()
    # Strict bounds tighten by one ulp, not one unit: the refined value
    # may be a float (``rate_per_s > 0`` admits 0.5), so ``> c`` only
    # proves ``>= nextafter(c)``.  That still strictly excludes the
    # endpoint, which is all the divisor/negativity proofs need.  An
    # infinite bound carries no information and stays put.
    if isinstance(op, ast.Lt):
        return Interval.range(-math.inf, _just_below(other.hi))
    if isinstance(op, ast.LtE):
        return Interval.range(-math.inf, other.hi)
    if isinstance(op, ast.Gt):
        return Interval.range(_just_above(other.lo), math.inf)
    if isinstance(op, ast.GtE):
        return Interval.range(other.lo, math.inf)
    if isinstance(op, ast.Eq):
        return other
    return TOP


def _just_below(bound: float) -> float:
    return math.nextafter(bound, -math.inf) if math.isfinite(bound) else bound


def _just_above(bound: float) -> float:
    return math.nextafter(bound, math.inf) if math.isfinite(bound) else bound


def _exclude_point(ival: Interval, point: float) -> Interval:
    """``ival`` minus ``point`` — only endpoints can be sliced off.

    A matching endpoint steps inward by one ulp — enough to make a
    zero-containing divisor range provably nonzero after an
    ``if n != 0`` guard, without assuming the value is an integer.
    """
    if ival.is_bottom or ival.is_top:
        return ival
    if ival.lo == point and ival.hi == point:
        return BOTTOM  # the branch is infeasible
    lo, hi = ival.lo, ival.hi
    if lo == point:
        lo = math.nextafter(point, math.inf)
    if hi == point:
        hi = math.nextafter(point, -math.inf)
    return Interval.range(lo, hi)


# -- interprocedural summaries ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """What a call site needs: parameter names and the abstract return."""

    params: tuple[str, ...]
    ret: AbsValue


class Interpreter:
    """Whole-program façade: per-function analyses + the summary cache.

    One instance per :class:`~repro.analysis.modgraph.ModuleIndex`, shared
    by the ``shape`` and ``bound`` checkers (see :func:`interpreter_for`),
    so every function is analysed at most once per run.  Summaries are
    computed bottom-up on demand: resolving a call triggers the callee's
    analysis first; a cycle (recursion) yields ⊤ for the in-progress
    frame, which bounds the computation on any call graph.
    """

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self._analyses: dict[tuple[str, int], FunctionAnalysis] = {}
        self._summaries: dict[tuple[str, str], FunctionSummary | None] = {}
        self._in_progress: set[tuple[str, str]] = set()
        self._numpy_aliases: dict[str, frozenset[str]] = {}

    # -- per-function analyses -------------------------------------------

    def analysis(
        self,
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> FunctionAnalysis:
        """The (cached) fixpoint analysis of ``func`` in ``info``."""
        key = (info.name, func.lineno)
        cached = self._analyses.get(key)
        if cached is None or cached.func is not func:
            cached = FunctionAnalysis(self, info, func)
            self._analyses[key] = cached
        return cached

    def numpy_aliases(self, info: ModuleInfo) -> frozenset[str]:
        """Local names bound to the numpy module in ``info``."""
        cached = self._numpy_aliases.get(info.name)
        if cached is None:
            cached = frozenset(
                local
                for local, module in info.imported_modules.items()
                if module == "numpy" or module.startswith("numpy.")
            )
            self._numpy_aliases[info.name] = cached
        return cached

    # -- summaries -------------------------------------------------------

    def summary(
        self, info: ModuleInfo, symbol: SymbolDef
    ) -> FunctionSummary | None:
        """Bottom-up summary of a resolved in-project function."""
        node = symbol.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        key = (info.name, symbol.name)
        if key in self._in_progress:
            return None  # recursion: ⊤
        if key in self._summaries:
            return self._summaries[key]
        self._in_progress.add(key)
        try:
            analysis = self.analysis(info, node)
            ret = _externalize(analysis.return_value())
        finally:
            self._in_progress.discard(key)
        args = node.args
        params = tuple(
            a.arg
            for a in (*args.posonlyargs, *args.args)
            if a.arg not in ("self", "cls")
        )
        summary = FunctionSummary(params=params, ret=ret)
        self._summaries[key] = summary
        return summary

    # -- call-site application -------------------------------------------

    def call_value(
        self,
        info: ModuleInfo,
        call: ast.Call,
        env: Env,
        caller: FunctionAnalysis,
    ) -> AbsValue:
        """Abstract result of an in-project call, or ⊤."""
        resolved = resolve_callee(self.index, info, call.func)
        if resolved is None:
            return AbsValue.top()
        callee_info, symbol = resolved
        if isinstance(symbol.node, ast.ClassDef):
            return AbsValue.top()  # fields bind via ctor_fields
        summary = self.summary(callee_info, symbol)
        if summary is None:
            return AbsValue.top()
        bindings = _bind_call(call, summary.params)
        if bindings is None:
            return summary.ret if summary.ret.sym is None else AbsValue.top()
        values = {
            param: caller.eval(arg, env) for param, arg in bindings.items()
        }
        return _substitute(summary.ret, values)

    def ctor_fields(
        self,
        info: ModuleInfo,
        call: ast.Call,
        env: Env,
        caller: FunctionAnalysis,
    ) -> dict[str, AbsValue]:
        """Field values bound by a dataclass constructor call, if any."""
        cls = self.resolve_class(info, call)
        if cls is None:
            return {}
        fields = _dataclass_fields(cls)
        if not fields:
            return {}
        bindings = _bind_call(call, fields)
        if bindings is None:
            return {}
        return {
            field: caller.eval(arg, env)
            for field, arg in bindings.items()
        }

    def resolve_class(
        self, info: ModuleInfo, call: ast.Call
    ) -> ast.ClassDef | None:
        """The in-project class a constructor call resolves to, if any."""
        resolved = resolve_callee(self.index, info, call.func)
        if resolved is None:
            return None
        node = resolved[1].node
        return node if isinstance(node, ast.ClassDef) else None


def _dataclass_fields(node: ast.ClassDef) -> tuple[str, ...]:
    is_dataclass = False
    for decorator in node.decorator_list:
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if isinstance(target, ast.Name) and target.id == "dataclass":
            is_dataclass = True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            is_dataclass = True
    if not is_dataclass:
        return ()
    return tuple(
        stmt.target.id
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and not stmt.target.id.startswith("_")
    )


def _bind_call(
    call: ast.Call, params: tuple[str, ...]
) -> dict[str, ast.expr] | None:
    """Map parameter names to argument expressions, or ``None`` on *args."""
    bindings: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred) or i >= len(params):
            return None
        bindings[params[i]] = arg
    for keyword in call.keywords:
        if keyword.arg is None:
            return None  # **kwargs
        if keyword.arg in params:
            bindings[keyword.arg] = keyword.value
    return bindings


def _externalize(value: AbsValue) -> AbsValue:
    """Strip callee-local symbols; keep only ``param:*`` names."""

    def keep(sym: str | None) -> str | None:
        return sym if sym is not None and sym.startswith("param:") else None

    shape = value.shape
    if shape is not None and shape.dims is not None:
        shape = Shape(
            dims=tuple(Dim(ival=d.ival, sym=keep(d.sym)) for d in shape.dims)
        )
    return AbsValue(
        ival=value.ival,
        shape=shape,
        sym=keep(value.sym),
        tup=None,
    )


def _substitute(ret: AbsValue, values: dict[str, AbsValue]) -> AbsValue:
    """Replace ``param:<name>`` symbols with call-site argument facts."""

    def resolve(sym: str | None) -> AbsValue | None:
        if sym is None or not sym.startswith("param:"):
            return None
        return values.get(sym.partition(":")[2])

    direct = resolve(ret.sym)
    if direct is not None and ret.shape is None:
        return direct
    shape = ret.shape
    if shape is not None and shape.dims is not None:
        dims = []
        for dim in shape.dims:
            bound = resolve(dim.sym)
            if bound is not None:
                dims.append(bound.as_dim())
            else:
                dims.append(Dim(ival=dim.ival, sym=None))
        shape = Shape(dims=tuple(dims))
    return AbsValue(ival=ret.ival, shape=shape, sym=None, tup=None)


# -- shared instances ------------------------------------------------------

_INTERPRETERS: "weakref.WeakKeyDictionary[Any, Interpreter]" = (
    weakref.WeakKeyDictionary()
)


def interpreter_for(index: ModuleIndex) -> Interpreter:
    """The shared :class:`Interpreter` of one analysis run.

    The ``shape`` and ``bound`` checkers both call this, so the per-run
    fixpoints and summaries are computed once, not twice.
    """
    interp = _INTERPRETERS.get(index)
    if interp is None:
        interp = Interpreter(index)
        _INTERPRETERS[index] = interp
    return interp
