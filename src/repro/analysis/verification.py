"""Verification-traceability checker (``VER*``).

The differential-oracle subsystem (``repro.verify``) cross-checks every
vectorised kernel against a scalar reference.  That contract only holds
while the two stay *linked*: a vectorised implementation must say, in
prose the docs build can resolve, which scalar model it is bit-identical
to.  This checker enforces the link:

- ``VER001`` — a public function in a vectorised module (filename
  contains ``vector``) has no Sphinx cross-reference (``:func:``,
  ``:class:`` or ``:meth:``) to its reference implementation, in either
  its own docstring or the module docstring.

A module-level cross-reference covers every function in the file (the
common case: one module docstring naming the scalar twin once).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["VerificationChecker"]

#: Sphinx roles that count as naming a reference implementation.
_XREF_RE = re.compile(r":(?:func|class|meth):`")


def _names_reference(docstring: str | None) -> bool:
    return bool(docstring and _XREF_RE.search(docstring))


class VerificationChecker(Checker):
    """Require vectorised kernels to name their scalar reference."""

    name = "ver"
    codes = {
        "VER001": (
            "public function in a vectorised module lacks a :func:/:class:"
            "/:meth: cross-reference to its scalar reference"
        ),
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if "vector" not in Path(source.path).stem:
            return
        if _names_reference(ast.get_docstring(source.tree)):
            return
        for stmt in source.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            if _names_reference(ast.get_docstring(stmt)):
                continue
            yield self.finding(
                source,
                stmt,
                "VER001",
                f"vectorised function {stmt.name!r} names no scalar "
                "reference (:func:/:class:/:meth: cross-reference) in its "
                "docstring or the module docstring",
            )
