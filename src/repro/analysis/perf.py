"""Hot-path performance pass (``PERF*``), built on the dataflow engine.

Four rules over per-function CFGs + the ndarray-typedness lattice:

- ``PERF001`` — a Python ``for`` loop iterates element-wise over an
  ndarray-typed value (directly, via ``range(len(a))`` / ``a.shape``,
  via ``zip``/``enumerate`` of arrays, or over ``arr.tolist()``);
- ``PERF002`` — ``list.append`` / scalar ``+=`` accumulation inside such
  a loop: the loop body is a reduction or map that numpy expresses in
  one vectorised op;
- ``PERF003`` — allocation (`np.zeros`-family, ``dict()``/``list()``
  constructors) inside a *hot* loop — nesting depth >= 2, or depth >= 1
  when profiling marks the function hot; array-growth calls
  (``np.concatenate``/``np.append``/``vstack``) are flagged in any loop
  because repeated reallocation is quadratic;
- ``PERF004`` — a call whose arguments are all loop-invariant (proven by
  reaching definitions) to a resolved in-project function that is
  shallowly pure and expensive enough to matter: hoist or memoise.

Hotness is not guessed.  ``python -m repro.analysis --profile FILE``
feeds cProfile JSON (as written by ``benchmarks/bench_trajectory.py
--profile-out``) into :meth:`PerfChecker.set_profile`; findings inside
profiled functions carry the measured cumulative seconds and PERF003
widens from "nested loop" to "any loop in a hot function".
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from .cfg import CFG, Loop, shallow_exprs
from .dataflow import (
    ARRAY,
    ArraySeeds,
    NdarrayTypes,
    ReachingDefinitions,
    array_seeds,
    build_cfg,
    iter_functions,
    stmt_defs,
)
from .findings import Finding
from .modgraph import ModuleIndex, ModuleInfo, resolve_callee
from .visitor import ProjectChecker

__all__ = ["PerfChecker", "ProfileEntry", "load_profile_entries"]

#: numpy calls that grow an array by copying — quadratic in any loop.
_GROWTH_FUNCS = {"concatenate", "append", "vstack", "hstack", "stack"}

#: numpy allocation calls worth hoisting out of nested/hot loops.
_ALLOC_FUNCS = {
    "zeros", "ones", "empty", "full", "array", "asarray", "arange",
    "linspace", "tile", "repeat", "zeros_like", "ones_like", "empty_like",
    "full_like",
}

#: builtin constructors that allocate a fresh container per iteration.
_CTOR_FUNCS = {"dict", "list", "set"}

#: callee names whose presence makes a function not shallowly pure.
_IMPURE_CALLS = {
    "print", "open", "input", "exec", "eval", "write", "append", "add",
    "update", "extend", "pop", "setdefault", "remove", "discard", "clear",
    "insort", "heappush", "heappop", "seed", "shuffle",
}


@dataclasses.dataclass(frozen=True)
class ProfileEntry:
    """One cProfile row ingested via ``--profile``."""

    file: str
    line: int
    function: str
    ncalls: int
    cumtime_s: float


def load_profile_entries(doc: dict) -> list[ProfileEntry]:
    """Validate and convert a ``--profile`` JSON document."""
    version = doc.get("schema_version")
    if version != 1:
        raise ValueError(f"unsupported profile schema_version {version!r}")
    entries = []
    for row in doc.get("entries", []):
        entries.append(
            ProfileEntry(
                file=str(row["file"]),
                line=int(row["line"]),
                function=str(row["function"]),
                ncalls=int(row.get("ncalls", 0)),
                cumtime_s=float(row["cumtime_s"]),
            )
        )
    return entries


def _paths_match(finding_path: str, profile_file: str) -> bool:
    a = finding_path.replace("\\", "/")
    b = profile_file.replace("\\", "/")
    return a.endswith(b) or b.endswith(a)


class PerfChecker(ProjectChecker):
    """Vectorisation and hoisting opportunities on measured hot paths."""

    name = "perf"
    codes = {
        "PERF001": "python loop iterates element-wise over an ndarray",
        "PERF002": "append/+= accumulation in an ndarray loop; use a "
        "vectorised reduction",
        "PERF003": "allocation or array-growth call inside a hot loop",
        "PERF004": "loop-invariant call to a pure function; hoist or "
        "memoise",
    }

    def __init__(self) -> None:
        self._profile: list[ProfileEntry] = []

    def set_profile(self, entries: list[ProfileEntry]) -> None:
        """Attach measured hotness; cleared with an empty list."""
        self._profile = list(entries)

    # -- driver ----------------------------------------------------------

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        purity: dict[tuple[str, str], bool] = {}
        for info in sorted(index.targets(), key=lambda m: m.name):
            tree = info.source.tree
            for qualname, func in sorted(
                iter_functions(tree), key=lambda pair: pair[1].lineno
            ):
                if not any(
                    isinstance(node, (ast.For, ast.While))
                    for node in ast.walk(func)
                ):
                    continue
                yield from self._check_function(
                    index, info, qualname, func, purity
                )

    def _hot_cumtime(
        self, path: str, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> float | None:
        best: float | None = None
        for entry in self._profile:
            if entry.function != func.name:
                continue
            if not _paths_match(path, entry.file):
                continue
            if best is None or entry.cumtime_s > best:
                best = entry.cumtime_s
        return best

    # -- per-function rules ----------------------------------------------

    def _check_function(
        self,
        index: ModuleIndex,
        info: ModuleInfo,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        purity: dict[tuple[str, str], bool],
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        seeds = array_seeds(index, info, func)
        types = NdarrayTypes(cfg, seeds)
        rdefs = ReachingDefinitions(cfg)
        path = info.source.path
        cumtime = self._hot_cumtime(path, func)
        hot_note = f" [hot: {cumtime:.3f}s cumulative]" if cumtime else ""

        elementwise: list[Loop] = []
        for loop in cfg.loops:
            node = loop.node
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            bid, idx = cfg.location[id(node)]
            env = types.env_before(bid, idx)
            described = self._elementwise_iter(node.iter, types, env)
            if described is None:
                continue
            elementwise.append(loop)
            yield self.finding_at(
                path,
                node.lineno,
                node.col_offset,
                "PERF001",
                f"loop in '{qualname}' iterates element-wise over "
                f"{described}; replace with vectorised numpy ops"
                f"{hot_note}",
            )

        yield from self._accumulations(
            cfg, elementwise, path, qualname, hot_note
        )
        yield from self._allocations(
            cfg,
            seeds,
            path,
            qualname,
            hot=cumtime is not None,
            hot_note=hot_note,
        )
        yield from self._invariant_calls(
            index, info, cfg, rdefs, purity, path, qualname, hot_note
        )

    # -- PERF001 ---------------------------------------------------------

    def _elementwise_iter(
        self, iter_expr: ast.expr, types: NdarrayTypes, env: dict[str, str]
    ) -> str | None:
        """Describe an element-wise ndarray iteration, or ``None``."""
        if types.kind_of(iter_expr, env) == ARRAY:
            return f"ndarray {_describe(iter_expr)}"
        if not isinstance(iter_expr, ast.Call):
            return None
        func = iter_expr.func
        if isinstance(func, ast.Name) and func.id == "range":
            if len(iter_expr.args) == 3:
                step = iter_expr.args[2]
                if not (
                    isinstance(step, ast.Constant) and step.value in (1, -1)
                ):
                    return None  # strided walk (batching), not element-wise
            for arg in iter_expr.args:
                target = _range_extent_array(arg, types, env)
                if target is not None:
                    return f"indices of ndarray {target}"
            return None
        if isinstance(func, ast.Name) and func.id in ("zip", "enumerate"):
            for arg in iter_expr.args:
                if types.kind_of(arg, env) == ARRAY:
                    return f"ndarray {_describe(arg)} (via {func.id})"
                if _is_tolist_of_array(arg, types, env):
                    return (
                        f"{_describe(arg)} (via {func.id}; tolist() of an "
                        "ndarray)"
                    )
            return None
        if isinstance(func, ast.Name) and func.id == "list":
            if iter_expr.args and types.kind_of(
                iter_expr.args[0], env
            ) == ARRAY:
                return f"list({_describe(iter_expr.args[0])})"
            return None
        if _is_tolist_of_array(iter_expr, types, env):
            return f"{_describe(iter_expr)} (tolist() of an ndarray)"
        return None

    # -- PERF002 ---------------------------------------------------------

    def _accumulations(
        self,
        cfg: CFG,
        elementwise: list[Loop],
        path: str,
        qualname: str,
        hot_note: str,
    ) -> Iterator[Finding]:
        for loop in elementwise:
            targets = set(stmt_defs(loop.node))
            for bid in sorted(loop.members):
                block = cfg.blocks[bid]
                for stmt in block.stmts:
                    if stmt is loop.node:
                        continue
                    if (
                        isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Attribute)
                        and stmt.value.func.attr == "append"
                    ):
                        yield self.finding_at(
                            path,
                            stmt.lineno,
                            stmt.col_offset,
                            "PERF002",
                            f"'{_describe(stmt.value.func)}' inside the "
                            f"element-wise ndarray loop in '{qualname}'; "
                            "build the result with one vectorised "
                            f"expression{hot_note}",
                        )
                    elif isinstance(stmt, ast.AugAssign) and isinstance(
                        stmt.op, (ast.Add, ast.Sub, ast.Mult)
                    ):
                        if isinstance(stmt.target, ast.Name) and _mentions(
                            stmt.value, targets
                        ):
                            yield self.finding_at(
                                path,
                                stmt.lineno,
                                stmt.col_offset,
                                "PERF002",
                                f"scalar '{stmt.target.id} "
                                f"{_AUG_OPS[type(stmt.op)]}= ...' "
                                f"accumulation over ndarray elements in "
                                f"'{qualname}'; use a numpy reduction "
                                f"(sum/dot){hot_note}",
                            )

    # -- PERF003 ---------------------------------------------------------

    def _allocations(
        self,
        cfg: CFG,
        seeds: ArraySeeds,
        path: str,
        qualname: str,
        hot: bool,
        hot_note: str,
    ) -> Iterator[Finding]:
        numpy_aliases = seeds.numpy_aliases or frozenset({"np", "numpy"})
        for block in cfg.blocks.values():
            if block.loop_depth < 1:
                continue
            for stmt in block.stmts:
                for expr in shallow_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        kind = _alloc_kind(node, numpy_aliases)
                        if kind is None:
                            continue
                        growth = kind in _GROWTH_FUNCS
                        if not growth and block.loop_depth < 2 and not hot:
                            continue
                        what = (
                            "array-growth call"
                            if growth
                            else "allocation"
                        )
                        where = (
                            f"loop depth {block.loop_depth}"
                            if not hot
                            else f"hot loop (depth {block.loop_depth})"
                        )
                        yield self.finding_at(
                            path,
                            node.lineno,
                            node.col_offset,
                            "PERF003",
                            f"{what} '{_describe(node.func)}(...)' inside "
                            f"{where} of '{qualname}'; allocate once "
                            f"outside the loop{hot_note}",
                        )

    # -- PERF004 ---------------------------------------------------------

    def _invariant_calls(
        self,
        index: ModuleIndex,
        info: ModuleInfo,
        cfg: CFG,
        rdefs: ReachingDefinitions,
        purity: dict[tuple[str, str], bool],
        path: str,
        qualname: str,
        hot_note: str,
    ) -> Iterator[Finding]:
        shadowed = _function_locals(cfg)
        seen: set[int] = set()
        for loop in cfg.loops:
            for bid in sorted(loop.members):
                block = cfg.blocks[bid]
                for i, stmt in enumerate(block.stmts):
                    if stmt is loop.node:
                        continue  # the iterable is evaluated once
                    for expr in shallow_exprs(stmt):
                        for node, comp_bound in _calls_with_bound(expr):
                            if id(node) in seen:
                                continue
                            resolved = resolve_callee(
                                index, info, node.func, shadowed
                            )
                            if resolved is None:
                                continue
                            target_info, symbol = resolved
                            target = symbol.node
                            if not isinstance(
                                target,
                                (ast.FunctionDef, ast.AsyncFunctionDef),
                            ):
                                continue
                            if target is cfg.func:
                                continue  # recursion, not hoisting
                            key = (target_info.name, symbol.name)
                            if key not in purity:
                                purity[key] = _shallow_pure(
                                    target
                                ) and _worth_hoisting(target)
                            if not purity[key]:
                                continue
                            if not _args_invariant(
                                node, rdefs, loop, bid, i, comp_bound
                            ):
                                continue
                            seen.add(id(node))
                            yield self.finding_at(
                                path,
                                node.lineno,
                                node.col_offset,
                                "PERF004",
                                f"call to pure "
                                f"'{target_info.name}.{symbol.name}' with "
                                f"loop-invariant arguments inside the loop "
                                f"in '{qualname}'; hoist it out or memoise"
                                f"{hot_note}",
                            )


_AUG_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}


# -- helpers ---------------------------------------------------------------


def _describe(expr: ast.AST) -> str:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return "<expression>"
    return f"'{text[:37]}...'" if len(text) > 40 else f"'{text}'"


def _range_extent_array(
    arg: ast.expr, types: NdarrayTypes, env: dict[str, str]
) -> str | None:
    """``len(a)`` or ``a.shape[i]`` with ``a`` an array -> describe ``a``."""
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Name)
        and arg.func.id == "len"
        and arg.args
        and types.kind_of(arg.args[0], env) == ARRAY
    ):
        return _describe(arg.args[0])
    if (
        isinstance(arg, ast.Subscript)
        and isinstance(arg.value, ast.Attribute)
        and arg.value.attr == "shape"
        and types.kind_of(arg.value.value, env) == ARRAY
    ):
        return _describe(arg.value.value)
    return None


def _is_tolist_of_array(
    expr: ast.expr, types: NdarrayTypes, env: dict[str, str]
) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "tolist"
        and types.kind_of(expr.func.value, env) == ARRAY
    )


def _mentions(expr: ast.AST, names: set[str]) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id in names
        for node in ast.walk(expr)
    )


def _alloc_kind(call: ast.Call, numpy_aliases: frozenset[str]) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in numpy_aliases and func.attr in (
            _ALLOC_FUNCS | _GROWTH_FUNCS
        ):
            return func.attr
        return None
    if isinstance(func, ast.Name) and func.id in _CTOR_FUNCS:
        return func.id
    return None


def _function_locals(cfg: CFG) -> frozenset[str]:
    """Parameter names + every name any block statement binds."""
    names = {d.name for d in ReachingDefinitions(cfg).param_defs}
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            names.update(stmt_defs(stmt))
    return frozenset(names)


def _shallow_pure(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """No observable side effects at one level of inspection."""
    for node in ast.walk(func):
        if isinstance(
            node,
            (ast.Global, ast.Nonlocal, ast.Yield, ast.YieldFrom, ast.Await,
             ast.Delete),
        ):
            return False
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return False
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in _IMPURE_CALLS:
                return False
            if name and ("random" in name or name == "default_rng"):
                return False
    return True


def _worth_hoisting(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Expensive enough that a hoist/memoisation plausibly matters."""
    if any(
        isinstance(node, (ast.For, ast.While, ast.ListComp, ast.GeneratorExp))
        for node in ast.walk(func)
    ):
        return True
    return sum(1 for _ in ast.walk(func)) >= 40


def _comp_target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _comp_target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _comp_target_names(target.value)


def _calls_with_bound(
    expr: ast.AST, bound: frozenset[str] = frozenset()
) -> Iterator[tuple[ast.Call, frozenset[str]]]:
    """Calls in ``expr``, each with the comprehension/lambda names in scope.

    Those names are rebound every element, not every loop iteration, so
    reaching definitions never sees them — without tracking them a call
    like ``any(f(s) for s in xs)`` would look loop-invariant.
    """
    if isinstance(
        expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    ):
        names = set(bound)
        for gen in expr.generators:
            names.update(_comp_target_names(gen.target))
        bound = frozenset(names)
    elif isinstance(expr, ast.Lambda):
        args = expr.args
        bound = bound | {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
    if isinstance(expr, ast.Call):
        yield expr, bound
    for child in ast.iter_child_nodes(expr):
        yield from _calls_with_bound(child, bound)


def _args_invariant(
    call: ast.Call,
    rdefs: ReachingDefinitions,
    loop: Loop,
    bid: int,
    stmt_index: int,
    comp_bound: frozenset[str] = frozenset(),
) -> bool:
    """Every argument's value is provably the same on every iteration."""
    exprs: list[ast.expr] = list(call.args)
    for keyword in call.keywords:
        exprs.append(keyword.value)
    fact = rdefs.before(bid, stmt_index)
    for expr in exprs:
        if isinstance(expr, ast.Starred):
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                return False  # nested call: value identity unknown
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in comp_bound:
                    return False  # rebound per comprehension element
                # No local definition => a module global or builtin, which
                # the loop body cannot rebind without a ``global`` stmt.
                defs = rdefs.of(node.id, fact)
                if any(d.block in loop.members for d in defs):
                    return False
    return True
