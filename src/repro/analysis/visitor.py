"""Shared infrastructure for the AST checkers.

A :class:`SourceFile` bundles one parsed module with its suppression map;
:class:`Checker` is the interface every lint pass implements; and
:func:`collect_sources` walks the target paths, parsing each ``.py`` file
exactly once so all checkers share the tree.

Suppression syntax (trailing comment on the offending line)::

    x = energy_pj + latency_cycles  # repro-lint: ignore[unit]
    y = np.random.rand()            # repro-lint: ignore[det, DET001]
    z = mixed_everything()          # repro-lint: ignore

A bare ``ignore`` silences every checker on that line; bracketed tokens
may be group names (``unit``/``det``/``cfg``/``exp``/``ver``) or exact codes
(``UNIT002``).  A ``# repro-lint: skip-file`` comment anywhere in the
first ten lines exempts the whole file.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, group_of

__all__ = [
    "SourceFile",
    "Checker",
    "ProjectChecker",
    "collect_sources",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([^\]]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")
_SKIP_FILE_WINDOW = 10

#: Directory names never descended into when collecting sources.
_EXCLUDED_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist"}


@dataclasses.dataclass
class SourceFile:
    """One parsed Python module plus its per-line suppression map."""

    path: str
    text: str
    tree: ast.Module
    #: line number -> set of suppression tokens ({"*"} means suppress all).
    suppressions: dict[int, set[str]]
    skip: bool = False

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None) -> "SourceFile":
        """Read and parse ``path``; raises ``SyntaxError`` on broken files."""
        path = str(path)
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(text, filename=path)
        suppressions: dict[int, set[str]] = {}
        skip = False
        # Only real COMMENT tokens count: a suppression example quoted in
        # a docstring is documentation, not a suppression.
        for lineno, comment in _comments(text):
            match = _SUPPRESS_RE.search(comment)
            if match is not None:
                tokens = match.group(1)
                if tokens is None:
                    suppressions[lineno] = {"*"}
                else:
                    suppressions[lineno] = {
                        t.strip() for t in tokens.split(",") if t.strip()
                    }
            if lineno <= _SKIP_FILE_WINDOW and _SKIP_FILE_RE.search(comment):
                skip = True
        return cls(
            path=path, text=text, tree=tree, suppressions=suppressions, skip=skip
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching ignore comment."""
        tokens = self.suppressions.get(finding.line)
        if not tokens:
            return False
        if "*" in tokens:
            return True
        return finding.code in tokens or group_of(finding.code) in tokens


class Checker(abc.ABC):
    """One lint pass: a name, its finding codes, and a ``check`` method."""

    #: Suppression-group name; must match a value in ``findings.GROUPS``.
    name: str
    #: code -> one-line description, for ``--list-checkers`` and the docs.
    codes: dict[str, str]

    @abc.abstractmethod
    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed source file."""

    def finding(
        self, source: SourceFile, node: ast.AST, code: str, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _comments(text: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, comment_text)`` for every comment token."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


class ProjectChecker(abc.ABC):
    """A whole-program lint pass: sees every module at once.

    Unlike :class:`Checker`, which inspects one file in isolation, a
    project checker receives the :class:`~repro.analysis.modgraph.ModuleIndex`
    built over the full run — lint targets plus usage-only context (the
    test suite) — so it can follow imports, calls and reachability across
    module boundaries.  Findings must still anchor to a lint-target file.
    """

    #: Suppression-group name; must match a value in ``findings.GROUPS``.
    name: str
    #: code -> one-line description, for ``--list-checkers`` and the docs.
    codes: dict[str, str]

    @abc.abstractmethod
    def check_project(self, index) -> Iterator[Finding]:
        """Yield findings over the whole-program module index."""

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        code: str,
        message: str,
        data: dict | None = None,
    ) -> Finding:
        """Build a finding at an explicit location (with optional evidence)."""
        return Finding(
            path=path, line=line, col=col, code=code, message=message, data=data
        )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        elif root.is_dir():
            candidates = sorted(
                p
                for p in root.rglob("*.py")
                if not any(part in _EXCLUDED_DIRS for part in p.parts)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield path


def collect_sources(paths: Iterable[str | Path]) -> list[SourceFile]:
    """Parse every Python file under ``paths``, dropping ``skip-file`` modules."""
    sources = []
    for path in iter_python_files(paths):
        source = SourceFile.parse(path)
        if not source.skip:
            sources.append(source)
    return sources
