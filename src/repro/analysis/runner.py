"""Analysis driver and command line.

``python -m repro.analysis [--json] [paths...]`` runs every checker over
the given paths (default: ``src``, ``examples`` and ``benchmarks`` under
the current directory) and exits nonzero when findings survive the
suppression comments — the same contract the pytest gate and the CI lint
job rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .config_checks import ConfigChecker
from .determinism import DeterminismChecker
from .exports import ExportChecker
from .findings import Finding
from .reporting import render_json, render_text
from .units import UnitChecker
from .verification import VerificationChecker
from .visitor import Checker, collect_sources

__all__ = ["ALL_CHECKERS", "run_analysis", "default_paths", "main"]

#: Every registered checker, in report order.
ALL_CHECKERS: tuple[Checker, ...] = (
    UnitChecker(),
    DeterminismChecker(),
    ConfigChecker(),
    ExportChecker(),
    VerificationChecker(),
)

_DEFAULT_ROOTS = ("src", "examples", "benchmarks")


def default_paths(base: str | Path = ".") -> list[Path]:
    """The conventional lint surface: src/examples/benchmarks under ``base``."""
    base = Path(base)
    found = [base / root for root in _DEFAULT_ROOTS if (base / root).is_dir()]
    if not found:
        raise FileNotFoundError(
            f"none of {_DEFAULT_ROOTS} exist under {base.resolve()}; "
            "pass explicit paths"
        )
    return found


def run_analysis(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], int]:
    """Run the checkers over ``paths``.

    ``select`` optionally restricts to checker groups (``unit``/``det``/
    ``cfg``/``exp``/``ver``) or exact codes (``UNIT002``).  Returns the
    surviving
    (non-suppressed) findings and the number of files scanned.
    """
    selected = {s.strip() for s in select} if select else None
    if selected:
        known = {c.name for c in ALL_CHECKERS} | {
            code for c in ALL_CHECKERS for code in c.codes
        }
        unknown = sorted(selected - known)
        if unknown:
            raise ValueError(
                f"unknown --select token(s): {', '.join(unknown)}; "
                "expected a checker group (unit/det/cfg/exp/ver) or a "
                "code like UNIT002"
            )
    sources = collect_sources(paths)
    findings: list[Finding] = []
    for source in sources:
        for checker in ALL_CHECKERS:
            if selected is not None and checker.name not in selected:
                # The checker may still own explicitly selected codes.
                if not any(code in selected for code in checker.codes):
                    continue
            for finding in checker.check(source):
                if selected is not None and not (
                    checker.name in selected or finding.code in selected
                ):
                    continue
                if source.is_suppressed(finding):
                    continue
                findings.append(finding)
    return sorted(findings), len(sources)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the uSystolic reproduction: unit "
            "consistency, determinism, config invariants, export hygiene, "
            "verification traceability."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: src examples benchmarks)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="GROUP_OR_CODE",
        help="restrict to checker groups or codes (repeatable, "
        "comma-separated): unit,det,cfg,exp,ver or e.g. UNIT002",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print every checker and finding code, then exit",
    )
    return parser


def _list_checkers() -> str:
    lines = []
    for checker in ALL_CHECKERS:
        lines.append(f"[{checker.name}] {type(checker).__name__}")
        for code, description in sorted(checker.codes.items()):
            lines.append(f"  {code}  {description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry: 0 clean, 1 findings, 2 usage/path errors."""
    args = _build_parser().parse_args(argv)
    if args.list_checkers:
        print(_list_checkers())
        return 0
    select = None
    if args.select:
        select = [
            token for chunk in args.select for token in chunk.split(",") if token
        ]
    try:
        paths = [Path(p) for p in args.paths] or default_paths()
        findings, files_scanned = run_analysis(paths, select=select)
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2
    report = (
        render_json(findings, files_scanned)
        if args.json
        else render_text(findings, files_scanned)
    )
    print(report)
    return 1 if findings else 0
