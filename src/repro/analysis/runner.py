"""Analysis driver and command line.

``python -m repro.analysis [--json] [paths...]`` runs every checker over
the given paths (default: ``src``, ``examples`` and ``benchmarks`` under
the current directory) and exits nonzero when findings survive the
suppression comments and the baseline — the same contract the pytest
gate and the CI lint job rely on.

The run parses each source file exactly once: the per-file checkers and
the whole-program passes (``arch``/``flow``/``dead``/``perf``/``conc``/
``shape``/``bound``) all share the same
:class:`~repro.analysis.visitor.SourceFile` list and the
:class:`~repro.analysis.modgraph.ModuleIndex` built from it.  The test
suite is additionally indexed as *usage context* so the reachability
pass sees what tests exercise, without linting the tests themselves.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Iterable, Sequence

from . import layers
from .arch import ArchChecker, layer_violations
from .baseline import Baseline, BaselineDelta
from .bounds import BoundChecker
from .conc import ConcChecker
from .config_checks import ConfigChecker
from .dead import DeadChecker
from .determinism import DeterminismChecker
from .exports import ExportChecker
from .findings import Finding, group_of
from .flow import FlowChecker
from .modgraph import ModuleIndex, build_index, render_dot
from .perf import PerfChecker, ProfileEntry, load_profile_entries
from .reporting import rank_by_profile, render_json, render_text
from .scheme_checks import SchemeChecker
from .shapecheck import ShapeChecker
from .units import UnitChecker
from .verification import VerificationChecker
from .visitor import Checker, ProjectChecker, SourceFile, collect_sources

__all__ = [
    "ALL_CHECKERS",
    "PROJECT_CHECKERS",
    "AnalysisResult",
    "analyze",
    "run_analysis",
    "default_paths",
    "context_paths",
    "render_architecture_section",
    "update_architecture_doc",
    "write_graph_dot",
    "main",
]

#: Every registered per-file checker, in report order.
ALL_CHECKERS: tuple[Checker, ...] = (
    UnitChecker(),
    DeterminismChecker(),
    ConfigChecker(),
    ExportChecker(),
    VerificationChecker(),
    SchemeChecker(),
)

#: Whole-program passes; they run over the shared module index.
PROJECT_CHECKERS: tuple[ProjectChecker, ...] = (
    ArchChecker(),
    FlowChecker(),
    DeadChecker(),
    PerfChecker(),
    ConcChecker(),
    ShapeChecker(),
    BoundChecker(),
)

#: The runner's own stale-suppression code (not a checker class: it needs
#: to see which comments matched after *all* other findings are known).
SUPPRESSION_CODES = {
    "SUP001": "suppression comment no longer suppresses any finding",
}

_DEFAULT_ROOTS = ("src", "examples", "benchmarks")
_CONTEXT_ROOTS = ("tests",)
DEFAULT_BASELINE = "analysis-baseline.json"


def default_paths(base: str | Path = ".") -> list[Path]:
    """The conventional lint surface: src/examples/benchmarks under ``base``."""
    base = Path(base)
    found = [base / root for root in _DEFAULT_ROOTS if (base / root).is_dir()]
    if not found:
        raise FileNotFoundError(
            f"none of {_DEFAULT_ROOTS} exist under {base.resolve()}; "
            "pass explicit paths"
        )
    return found


def context_paths(base: str | Path = ".") -> list[Path]:
    """Usage-only context (the test suite) indexed for reachability."""
    base = Path(base)
    return [base / root for root in _CONTEXT_ROOTS if (base / root).is_dir()]


@dataclasses.dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding]
    files_scanned: int
    sources: list[SourceFile]
    index: ModuleIndex
    #: (profile path, findings ranked by measured cumtime) when --profile
    #: was supplied; None otherwise.
    profile_rank: tuple[str, list[tuple[Finding, float]]] | None = None


def _known_select_tokens() -> set[str]:
    known: set[str] = set(SUPPRESSION_CODES) | {"sup"}
    for checker in (*ALL_CHECKERS, *PROJECT_CHECKERS):
        known.add(checker.name)
        known.update(checker.codes)
    return known


def analyze(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    context: Iterable[str | Path] = (),
    profile: str | Path | None = None,
) -> AnalysisResult:
    """Run every checker over ``paths``, sharing one parse per file.

    ``select`` restricts the *reported* findings to checker groups
    (``unit``/``arch``/...) or exact codes (``FLOW001``); every checker
    still runs, so stale-suppression detection stays accurate.
    ``context`` paths are parsed and indexed for the whole-program passes
    but are not themselves linted.  ``profile`` names a cProfile JSON
    document (``benchmarks/bench_trajectory.py --profile-out``): the
    PERF pass then annotates findings in measured-hot functions and the
    result carries a hotness ranking.
    """
    # Tokens are case-insensitive: accept "PERF,CONC" and "perf001" by
    # normalising to the canonical code (upper) or group (lower) form.
    known = _known_select_tokens()
    selected = (
        {
            token.upper() if token.upper() in known else token.lower()
            for token in (s.strip() for s in select)
        }
        if select
        else None
    )
    if selected:
        unknown = sorted(selected - known)
        if unknown:
            raise ValueError(
                f"unknown --select token(s): {', '.join(unknown)}; "
                "expected a checker group (unit/det/cfg/exp/ver/scheme/arch/"
                "flow/dead/perf/conc/shape/bound/sup) or a code like UNIT002"
            )
    profile_entries: list[ProfileEntry] = []
    if profile is not None:
        import json as _json

        doc = _json.loads(Path(profile).read_text(encoding="utf-8"))
        profile_entries = load_profile_entries(doc)
    for project_checker in PROJECT_CHECKERS:
        if isinstance(project_checker, PerfChecker):
            project_checker.set_profile(profile_entries)
    sources = collect_sources(paths)
    # Test *data* is not usage context: planted fixture trees (which
    # deliberately contain violations and fake ``repro`` packages) must
    # not keep real exports alive or shadow real modules in the index.
    context_sources = [
        source
        for source in (collect_sources(context) if context else [])
        if "fixtures" not in Path(source.path).parts
    ]
    index = build_index(sources, context_sources)

    raw: list[Finding] = []
    for source in sources:
        for checker in ALL_CHECKERS:
            raw.extend(checker.check(source))
    for project_checker in PROJECT_CHECKERS:
        raw.extend(project_checker.check_project(index))

    by_path = {source.path: source for source in sources}
    survivors: list[Finding] = []
    matched_lines: set[tuple[str, int]] = set()
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            matched_lines.add((finding.path, finding.line))
        else:
            survivors.append(finding)
    survivors.extend(_stale_suppressions(sources, matched_lines))

    if selected is not None:
        survivors = [
            finding
            for finding in survivors
            if finding.code in selected or group_of(finding.code) in selected
        ]
    survivors = sorted(survivors)
    profile_rank = None
    if profile is not None:
        profile_rank = (
            str(profile),
            rank_by_profile(survivors, profile_entries),
        )
    return AnalysisResult(
        findings=survivors,
        files_scanned=len(sources),
        sources=sources,
        index=index,
        profile_rank=profile_rank,
    )


def _stale_suppressions(
    sources: list[SourceFile], matched_lines: set[tuple[str, int]]
) -> list[Finding]:
    """``SUP001`` for every ignore comment that silenced nothing.

    These findings deliberately bypass the normal suppression filter —
    a bare ``ignore`` would otherwise silence its own staleness report.
    Acknowledge an intentionally kept comment with an explicit ``sup``
    token instead.
    """
    stale: list[Finding] = []
    for source in sources:
        for lineno, tokens in sorted(source.suppressions.items()):
            if tokens & {"sup", "SUP001"}:
                continue
            if (source.path, lineno) in matched_lines:
                continue
            rendered = (
                "" if tokens == {"*"} else f"[{', '.join(sorted(tokens))}]"
            )
            stale.append(
                Finding(
                    path=source.path,
                    line=lineno,
                    col=0,
                    code="SUP001",
                    message=f"'# repro-lint: ignore{rendered}' suppresses "
                    "no finding on this line: remove it",
                )
            )
    return stale


def run_analysis(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    context: Iterable[str | Path] = (),
) -> tuple[list[Finding], int]:
    """Back-compat wrapper around :func:`analyze`.

    Returns the surviving (non-suppressed) findings and the number of
    files scanned.
    """
    result = analyze(paths, select=select, context=context)
    return result.findings, result.files_scanned


# -- generated artifacts ---------------------------------------------------

_DIAGRAM_BEGIN = "<!-- BEGIN GENERATED: layer-diagram -->"
_DIAGRAM_END = "<!-- END GENERATED: layer-diagram -->"


def render_architecture_section() -> str:
    """The generated layer-diagram block for ``docs/architecture.md``."""
    return (
        f"{_DIAGRAM_BEGIN}\n"
        "<!-- regenerate: python -m repro.analysis --write-arch-diagram -->\n"
        "```text\n"
        f"{layers.render_layer_diagram()}\n"
        "```\n"
        f"{_DIAGRAM_END}"
    )


def update_architecture_doc(path: str | Path) -> bool:
    """Rewrite the generated diagram section in ``path``.

    Returns True when the file changed.  Raises ``ValueError`` when the
    markers are missing — the section placement is editorial, only its
    body is generated.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    begin = text.find(_DIAGRAM_BEGIN)
    end = text.find(_DIAGRAM_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{path}: missing '{_DIAGRAM_BEGIN}'/'{_DIAGRAM_END}' markers"
        )
    updated = (
        text[:begin] + render_architecture_section() + text[end + len(_DIAGRAM_END):]
    )
    if updated == text:
        return False
    path.write_text(updated, encoding="utf-8")
    return True


def write_graph_dot(result: AnalysisResult, out: str | Path) -> None:
    """Export the package-level import graph (layer clusters, red edges)."""
    dot = render_dot(
        result.index,
        [(name, units) for name, units, _ in layers.LAYERS],
        layers.package_key,
        violations=layer_violations(result.index),
    )
    Path(out).write_text(dot, encoding="utf-8")


# -- CLI -------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the uSystolic reproduction: unit "
            "consistency, determinism, config invariants, export hygiene, "
            "verification traceability, layering contracts, interprocedural "
            "unit flow, dead-reachability, and abstract-interpretation "
            "shape/bound proofs."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: src examples benchmarks)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="GROUP_OR_CODE",
        help="restrict to checker groups or codes (repeatable, "
        "comma-separated): unit,det,cfg,exp,ver,scheme,arch,flow,dead,perf,"
        "conc,shape,bound,sup or e.g. UNIT002",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="cProfile JSON (benchmarks/bench_trajectory.py --profile-out) "
        "to rank PERF/CONC findings by measured cumulative time",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print every checker and finding code, then exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file to ratchet against (default: {DEFAULT_BASELINE} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--graph-dot",
        metavar="FILE",
        default=None,
        help="also export the package import graph as Graphviz DOT",
    )
    parser.add_argument(
        "--write-arch-diagram",
        nargs="?",
        const="docs/architecture.md",
        default=None,
        metavar="FILE",
        help="regenerate the layer diagram section in docs/architecture.md "
        "(or FILE), then exit",
    )
    return parser


def _list_checkers() -> str:
    lines = []
    for checker in (*ALL_CHECKERS, *PROJECT_CHECKERS):
        scope = (
            "project" if isinstance(checker, ProjectChecker) else "per-file"
        )
        lines.append(f"[{checker.name}] {type(checker).__name__} ({scope})")
        for code, description in sorted(checker.codes.items()):
            lines.append(f"  {code}  {description}")
    lines.append("[sup] stale-suppression pass (runner built-in)")
    for code, description in sorted(SUPPRESSION_CODES.items()):
        lines.append(f"  {code}  {description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry: 0 clean, 1 findings (or stale baseline), 2 errors."""
    args = _build_parser().parse_args(argv)
    if args.list_checkers:
        print(_list_checkers())
        return 0
    if args.write_arch_diagram is not None:
        try:
            changed = update_architecture_doc(args.write_arch_diagram)
        except (FileNotFoundError, ValueError) as exc:
            print(f"repro.analysis: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"{args.write_arch_diagram}: "
            + ("updated" if changed else "already up to date")
        )
        return 0
    select = None
    if args.select:
        select = [
            token for chunk in args.select for token in chunk.split(",") if token
        ]
    try:
        paths = [Path(p) for p in args.paths] or default_paths()
        result = analyze(
            paths,
            select=select,
            context=context_paths(),
            profile=args.profile,
        )
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2
    if args.graph_dot:
        write_graph_dot(result, args.graph_dot)
        print(f"import graph written to {args.graph_dot}", file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if Path(DEFAULT_BASELINE).is_file():
            baseline_path = DEFAULT_BASELINE
    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(result.findings).save(target)
        print(
            f"baseline {target}: accepted {len(result.findings)} finding(s)"
        )
        return 0

    delta: BaselineDelta | None = None
    reported = result.findings
    if baseline_path is not None and not args.no_baseline:
        try:
            delta = Baseline.load(baseline_path).apply(result.findings)
        except (FileNotFoundError, ValueError) as exc:
            print(f"repro.analysis: error: {exc}", file=sys.stderr)
            return 2
        reported = list(delta.new)
    profile_rank = result.profile_rank
    if profile_rank is not None and reported is not result.findings:
        # Re-rank against what the baseline left visible.
        profile_rank = (
            profile_rank[0],
            [(f, t) for f, t in profile_rank[1] if f in set(reported)],
        )
    report = (
        render_json(
            reported,
            result.files_scanned,
            delta,
            baseline_path,
            profile=profile_rank,
        )
        if args.json
        else render_text(
            reported, result.files_scanned, delta, profile=profile_rank
        )
    )
    print(report)
    failed = bool(reported) or (delta is not None and not delta.clean)
    return 1 if failed else 0
