"""Per-function control-flow graphs for the dataflow passes.

:func:`build_cfg` lowers one ``ast.FunctionDef`` into basic blocks of
*shallow* statements: a compound statement (``if``/``for``/``while``/
``try``) appears in exactly one block as a marker for its header
expressions (test, iterable, context managers), while its body statements
live in their own blocks connected by explicit edges.  The dataflow
transfer functions therefore never descend into a compound statement's
body — :func:`shallow_exprs` and the definition helpers in
``repro.analysis.dataflow`` give them the header-only view.

The graph records what the PERF/CONC checkers need beyond plain edges:

- per-block **loop nesting depth** (``BasicBlock.loop_depth``);
- explicit :class:`Loop` records with their member block sets, so
  "is this definition inside the loop?" is a set lookup;
- an entry and a single exit block (``return``/``raise`` edges land
  there), so backward analyses have one boundary;
- conditional-edge polarities (``CFG.cond_edges``): which successor a
  branch takes when its test holds, so the abstract interpreter in
  ``repro.analysis.absint`` can refine facts along each edge.

Approximations, chosen to over- rather than under-connect (a *may*
analysis stays sound): every block of a ``try`` body gets an edge to
every handler, ``finally`` bodies are appended on the fall-through path
only, and ``match`` statements branch like ``if`` chains without
modelling pattern bindings.
"""

from __future__ import annotations

import ast
import dataclasses

__all__ = ["BasicBlock", "CFG", "Loop", "build_cfg", "shallow_exprs"]


@dataclasses.dataclass
class BasicBlock:
    """A straight-line run of shallow statements."""

    bid: int
    loop_depth: int
    stmts: list[ast.stmt] = dataclasses.field(default_factory=list)
    succs: set[int] = dataclasses.field(default_factory=set)
    preds: set[int] = dataclasses.field(default_factory=set)


@dataclasses.dataclass(frozen=True)
class Loop:
    """One ``for``/``while`` loop: its header block and member blocks."""

    head: int
    #: every block whose statements execute inside the loop (head included).
    members: frozenset[int]
    node: ast.For | ast.AsyncFor | ast.While = dataclasses.field(compare=False)


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: dict[int, BasicBlock] = {}
        self.entry = 0
        self.exit = 1
        self.loops: list[Loop] = []
        #: id(stmt) -> (block id, index within block) for every placed stmt.
        self.location: dict[int, tuple[int, int]] = {}
        #: (src bid, dst bid) -> polarity for conditional edges: ``True``
        #: when the edge is taken because the ``if``/``while`` test held
        #: (or a ``for`` loop yielded an element), ``False`` for the
        #: fall-through/exit edge.  Unconditional edges are absent.  The
        #: abstract interpreter refines facts along these edges.
        self.cond_edges: dict[tuple[int, int], bool] = {}

    def block(self, bid: int) -> BasicBlock:
        """The block with id ``bid``."""
        return self.blocks[bid]

    def depth_of(self, bid: int) -> int:
        """Loop nesting depth of block ``bid`` (0 = not in any loop)."""
        return self.blocks[bid].loop_depth

    def loops_containing(self, bid: int) -> list[Loop]:
        """Every loop whose member set contains ``bid``, innermost last."""
        return [loop for loop in self.loops if bid in loop.members]

    def index(self) -> None:
        """(Re)build the ``location`` map after construction."""
        self.location = {
            id(stmt): (block.bid, i)
            for block in self.blocks.values()
            for i, stmt in enumerate(block.stmts)
        }


@dataclasses.dataclass
class _Ctx:
    """Construction context: jump targets and nesting."""

    breaks: list[int]
    continues: list[int]
    handlers: list[list[int]]
    depth: int


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        self._counter = 0
        self._new_block(0)  # entry
        self._new_block(0)  # exit

    def _new_block(self, depth: int) -> BasicBlock:
        block = BasicBlock(bid=self._counter, loop_depth=depth)
        self.cfg.blocks[block.bid] = block
        self._counter += 1
        return block

    def _edge(self, src: int, dst: int, cond: bool | None = None) -> None:
        self.cfg.blocks[src].succs.add(dst)
        self.cfg.blocks[dst].preds.add(src)
        if cond is not None:
            self.cfg.cond_edges[(src, dst)] = cond

    def build(self) -> CFG:
        ctx = _Ctx(breaks=[], continues=[], handlers=[], depth=0)
        end = self._body(self.cfg.func.body, self.cfg.entry, ctx)
        if end is not None:
            self._edge(end, self.cfg.exit)
        self.cfg.index()
        return self.cfg

    # -- statement lowering ----------------------------------------------

    def _body(
        self, stmts: list[ast.stmt], current: int | None, ctx: _Ctx
    ) -> int | None:
        """Place ``stmts`` starting at ``current``; return the open block."""
        for stmt in stmts:
            if current is None:
                # Unreachable code still gets blocks (and definitions), it
                # just has no predecessors.
                current = self._new_block(ctx.depth).bid
            current = self._stmt(stmt, current, ctx)
        return current

    def _place(self, stmt: ast.stmt, current: int) -> None:
        self.cfg.blocks[current].stmts.append(stmt)
        # Inside a try body, any statement may raise into a handler.
        # (Edges from the *block* are added wholesale by _try.)

    def _stmt(self, stmt: ast.stmt, current: int, ctx: _Ctx) -> int | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, current, ctx)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, current, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._place(stmt, current)
            return self._body(stmt.body, current, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current, ctx)
        if isinstance(stmt, ast.Return):
            self._place(stmt, current)
            self._edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            self._place(stmt, current)
            for handlers in reversed(ctx.handlers):
                for handler_bid in handlers:
                    self._edge(current, handler_bid)
            self._edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            self._place(stmt, current)
            if ctx.breaks:
                self._edge(current, ctx.breaks[-1])
            return None
        if isinstance(stmt, ast.Continue):
            self._place(stmt, current)
            if ctx.continues:
                self._edge(current, ctx.continues[-1])
            return None
        # Simple statements — including nested function/class definitions,
        # which are treated as opaque name bindings.
        self._place(stmt, current)
        return current

    def _if(self, stmt: ast.If, current: int, ctx: _Ctx) -> int:
        self._place(stmt, current)
        after = None
        then_block = self._new_block(ctx.depth)
        self._edge(current, then_block.bid, cond=True)
        then_end = self._body(stmt.body, then_block.bid, ctx)
        if stmt.orelse:
            else_block = self._new_block(ctx.depth)
            self._edge(current, else_block.bid, cond=False)
            else_end = self._body(stmt.orelse, else_block.bid, ctx)
        else:
            else_end = None
        after = self._new_block(ctx.depth)
        if not stmt.orelse:
            # Fall-through past a bodyless else: the test was false.
            self._edge(current, after.bid, cond=False)
        for end in (then_end, else_end):
            if end is not None:
                self._edge(end, after.bid)
        return after.bid

    def _loop(
        self, stmt: ast.For | ast.AsyncFor | ast.While, current: int, ctx: _Ctx
    ) -> int:
        head = self._new_block(ctx.depth)
        self._place(stmt, head.bid)
        self._edge(current, head.bid)
        after = self._new_block(ctx.depth)
        member_start = self._counter
        body_block = self._new_block(ctx.depth + 1)
        self._edge(head.bid, body_block.bid, cond=True)
        inner = _Ctx(
            breaks=ctx.breaks + [after.bid],
            continues=ctx.continues + [head.bid],
            handlers=ctx.handlers,
            depth=ctx.depth + 1,
        )
        body_end = self._body(stmt.body, body_block.bid, inner)
        if body_end is not None:
            self._edge(body_end, head.bid)  # back edge
        members = frozenset(
            {head.bid} | set(range(member_start, self._counter))
        )
        self.cfg.loops.append(Loop(head=head.bid, members=members, node=stmt))
        if stmt.orelse:
            else_block = self._new_block(ctx.depth)
            self._edge(head.bid, else_block.bid, cond=False)
            else_end = self._body(stmt.orelse, else_block.bid, ctx)
            if else_end is not None:
                self._edge(else_end, after.bid)
        else:
            self._edge(head.bid, after.bid, cond=False)
        return after.bid

    def _try(self, stmt: ast.Try, current: int, ctx: _Ctx) -> int | None:
        handler_blocks = [self._new_block(ctx.depth) for _ in stmt.handlers]
        for handler, block in zip(stmt.handlers, handler_blocks):
            # The handler node itself marks the exception-name binding.
            block.stmts.append(handler)  # type: ignore[arg-type]
        body_first = self._new_block(ctx.depth)
        self._edge(current, body_first.bid)
        body_start = body_first.bid
        inner = _Ctx(
            breaks=ctx.breaks,
            continues=ctx.continues,
            handlers=ctx.handlers + [[b.bid for b in handler_blocks]],
            depth=ctx.depth,
        )
        body_end = self._body(stmt.body, body_first.bid, inner)
        body_blocks = range(body_start, self._counter)
        for bid in body_blocks:
            for block in handler_blocks:
                self._edge(bid, block.bid)
        if stmt.orelse and body_end is not None:
            body_end = self._body(stmt.orelse, body_end, ctx)
        after = self._new_block(ctx.depth)
        if body_end is not None:
            self._edge(body_end, after.bid)
        for handler, block in zip(stmt.handlers, handler_blocks):
            handler_end = self._body(handler.body, block.bid, ctx)
            if handler_end is not None:
                self._edge(handler_end, after.bid)
        result: int | None = after.bid
        if stmt.finalbody:
            result = self._body(stmt.finalbody, after.bid, ctx)
        return result

    def _match(self, stmt: ast.Match, current: int, ctx: _Ctx) -> int:
        self._place(stmt, current)
        after = self._new_block(ctx.depth)
        self._edge(current, after.bid)  # no case may match
        for case in stmt.cases:
            case_block = self._new_block(ctx.depth)
            self._edge(current, case_block.bid)
            case_end = self._body(case.body, case_block.bid, ctx)
            if case_end is not None:
                self._edge(case_end, after.bid)
        return after.bid


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def shallow_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a *shallowly placed* statement evaluates itself.

    For compound statements this is the header only: the ``if``/``while``
    test, the ``for`` iterable, the ``with`` context expressions, the
    ``match`` subject.  Bodies are separate blocks and contribute nothing
    here.  Simple statements contribute all their child expressions.
    """
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return []
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []  # opaque name binding; body is its own scope
    if isinstance(stmt, ast.Try):
        return []
    return [
        node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)
    ]
