"""Determinism lint (``DET*``).

Every stochastic quantity in the reproduction — fault injection, synthetic
datasets, weight init — must flow from an explicitly seeded
``np.random.Generator`` so the Figure 9-14 numbers are bit-reproducible.
This pass flags the three ways hidden global state sneaks in:

- ``DET001`` — NumPy legacy global-state API (``np.random.rand``,
  ``np.random.seed``, ``np.random.shuffle``, ...);
- ``DET002`` — the stdlib ``random`` module (global Mersenne state, or the
  intentionally nondeterministic ``SystemRandom``);
- ``DET003`` — an RNG constructed *without* a seed
  (``np.random.default_rng()``, ``np.random.PCG64()``,
  ``random.Random()``), which silently pulls OS entropy.

The ``repro.unary`` package is a sanctioned site: its Sobol/LFSR modules
*are* the deterministic sequence generators, so it is exempt.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["DeterminismChecker"]

#: np.random constructors that are fine *when seeded*.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Package path fragments exempt from this checker (the RNG modules
#: themselves).
_SANCTIONED_FRAGMENTS = ("repro/unary/",)


def _is_sanctioned(path: str) -> bool:
    posix = PurePath(path).as_posix()
    return any(fragment in posix for fragment in _SANCTIONED_FRAGMENTS)


class DeterminismChecker(Checker):
    """Flag global-state and unseeded randomness outside sanctioned sites."""

    name = "det"
    codes = {
        "DET001": "numpy legacy global-state RNG call (np.random.*)",
        "DET002": "stdlib 'random' module usage (hidden global state)",
        "DET003": "RNG constructed without an explicit seed",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _is_sanctioned(source.path):
            return
        numpy_aliases, nprandom_aliases, stdlib_aliases, from_imports = (
            self._collect_imports(source.tree)
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(
                source,
                node,
                numpy_aliases,
                nprandom_aliases,
                stdlib_aliases,
                from_imports,
            )
            if finding is not None:
                yield finding

    @staticmethod
    def _collect_imports(tree: ast.Module):
        """Map local names to their randomness-relevant origins."""
        numpy_aliases: set[str] = set()
        nprandom_aliases: set[str] = set()
        stdlib_aliases: set[str] = set()
        #: local name -> ("numpy.random" | "random", original name)
        from_imports: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        numpy_aliases.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            nprandom_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
                    elif alias.name == "random":
                        stdlib_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            nprandom_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        from_imports[alias.asname or alias.name] = (
                            "numpy.random",
                            alias.name,
                        )
                elif node.module == "random":
                    for alias in node.names:
                        from_imports[alias.asname or alias.name] = (
                            "random",
                            alias.name,
                        )
        return numpy_aliases, nprandom_aliases, stdlib_aliases, from_imports

    def _check_call(
        self,
        source,
        node: ast.Call,
        numpy_aliases,
        nprandom_aliases,
        stdlib_aliases,
        from_imports,
    ) -> Finding | None:
        func = node.func
        # np.random.X(...) / numpy.random.X(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in numpy_aliases
        ):
            return self._numpy_random_finding(source, node, func.attr)
        # npr.X(...) where npr aliases numpy.random
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in nprandom_aliases
        ):
            return self._numpy_random_finding(source, node, func.attr)
        # random.X(...) on the stdlib module
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in stdlib_aliases
        ):
            return self._stdlib_finding(source, node, func.attr)
        # Bare names imported from numpy.random / random
        if isinstance(func, ast.Name) and func.id in from_imports:
            origin, original = from_imports[func.id]
            if origin == "numpy.random":
                return self._numpy_random_finding(source, node, original)
            return self._stdlib_finding(source, node, original)
        return None

    def _numpy_random_finding(self, source, node, attr: str) -> Finding | None:
        if attr in _SEEDED_CONSTRUCTORS:
            if self._has_seed_argument(node):
                return None
            return self.finding(
                source,
                node,
                "DET003",
                f"np.random.{attr}() without an explicit seed pulls OS "
                "entropy; pass a seed",
            )
        return self.finding(
            source,
            node,
            "DET001",
            f"np.random.{attr} uses hidden global RNG state; use a seeded "
            "np.random.default_rng(seed) instead",
        )

    def _stdlib_finding(self, source, node, attr: str) -> Finding | None:
        if attr == "Random":
            if self._has_seed_argument(node):
                return None
            return self.finding(
                source,
                node,
                "DET003",
                "random.Random() without an explicit seed pulls OS entropy; "
                "pass a seed",
            )
        return self.finding(
            source,
            node,
            "DET002",
            f"stdlib random.{attr} relies on hidden global state; use a "
            "seeded np.random.default_rng(seed) instead",
        )

    @staticmethod
    def _has_seed_argument(node: ast.Call) -> bool:
        """True when the call passes any non-None positional/keyword seed."""
        for arg in node.args:
            if not (isinstance(arg, ast.Constant) and arg.value is None):
                return True
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs: assume the caller knows
                return True
            if not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return True
        return False
