"""Determinism lint (``DET*``).

Every stochastic quantity in the reproduction — fault injection, synthetic
datasets, weight init — must flow from an explicitly seeded
``np.random.Generator`` so the Figure 9-14 numbers are bit-reproducible.
This pass flags the three ways hidden global state sneaks in:

- ``DET001`` — NumPy legacy global-state API (``np.random.rand``,
  ``np.random.seed``, ``np.random.shuffle``, ...);
- ``DET002`` — the stdlib ``random`` module (global Mersenne state, or the
  intentionally nondeterministic ``SystemRandom``);
- ``DET003`` — an RNG constructed *without* a seed
  (``np.random.default_rng()``, ``np.random.PCG64()``,
  ``random.Random()``), which silently pulls OS entropy.

``DET004`` guards the repo's caching discipline instead of its
randomness: ``functools.lru_cache`` on an *instance method* keeps every
``self`` alive in the cache forever (a leak, and cross-instance state
that survives reconfiguration), and on a function whose parameters are
annotated as numpy arrays it raises ``TypeError`` at call time because
arrays are unhashable.  Cacheable work belongs on module-level functions
of hashable config values — or in the content-addressed
``repro.jobs`` store.

The ``repro.unary`` package is a sanctioned site: its Sobol/LFSR modules
*are* the deterministic sequence generators, so it is exempt.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["DeterminismChecker"]

#: np.random constructors that are fine *when seeded*.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Package path fragments exempt from this checker (the RNG modules
#: themselves).
_SANCTIONED_FRAGMENTS = ("repro/unary/",)


def _is_sanctioned(path: str) -> bool:
    posix = PurePath(path).as_posix()
    return any(fragment in posix for fragment in _SANCTIONED_FRAGMENTS)


class DeterminismChecker(Checker):
    """Flag global-state and unseeded randomness outside sanctioned sites."""

    name = "det"
    codes = {
        "DET001": "numpy legacy global-state RNG call (np.random.*)",
        "DET002": "stdlib 'random' module usage (hidden global state)",
        "DET003": "RNG constructed without an explicit seed",
        "DET004": "functools.lru_cache on an instance method or "
        "array-annotated function",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _is_sanctioned(source.path):
            return
        numpy_aliases, nprandom_aliases, stdlib_aliases, from_imports = (
            self._collect_imports(source.tree)
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(
                source,
                node,
                numpy_aliases,
                nprandom_aliases,
                stdlib_aliases,
                from_imports,
            )
            if finding is not None:
                yield finding
        yield from self._check_caches(source)

    @staticmethod
    def _collect_imports(tree: ast.Module):
        """Map local names to their randomness-relevant origins."""
        numpy_aliases: set[str] = set()
        nprandom_aliases: set[str] = set()
        stdlib_aliases: set[str] = set()
        #: local name -> ("numpy.random" | "random", original name)
        from_imports: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        numpy_aliases.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            nprandom_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
                    elif alias.name == "random":
                        stdlib_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            nprandom_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        from_imports[alias.asname or alias.name] = (
                            "numpy.random",
                            alias.name,
                        )
                elif node.module == "random":
                    for alias in node.names:
                        from_imports[alias.asname or alias.name] = (
                            "random",
                            alias.name,
                        )
        return numpy_aliases, nprandom_aliases, stdlib_aliases, from_imports

    def _check_call(
        self,
        source,
        node: ast.Call,
        numpy_aliases,
        nprandom_aliases,
        stdlib_aliases,
        from_imports,
    ) -> Finding | None:
        func = node.func
        # np.random.X(...) / numpy.random.X(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in numpy_aliases
        ):
            return self._numpy_random_finding(source, node, func.attr)
        # npr.X(...) where npr aliases numpy.random
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in nprandom_aliases
        ):
            return self._numpy_random_finding(source, node, func.attr)
        # random.X(...) on the stdlib module
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in stdlib_aliases
        ):
            return self._stdlib_finding(source, node, func.attr)
        # Bare names imported from numpy.random / random
        if isinstance(func, ast.Name) and func.id in from_imports:
            origin, original = from_imports[func.id]
            if origin == "numpy.random":
                return self._numpy_random_finding(source, node, original)
            return self._stdlib_finding(source, node, original)
        return None

    def _numpy_random_finding(self, source, node, attr: str) -> Finding | None:
        if attr in _SEEDED_CONSTRUCTORS:
            if self._has_seed_argument(node):
                return None
            return self.finding(
                source,
                node,
                "DET003",
                f"np.random.{attr}() without an explicit seed pulls OS "
                "entropy; pass a seed",
            )
        return self.finding(
            source,
            node,
            "DET001",
            f"np.random.{attr} uses hidden global RNG state; use a seeded "
            "np.random.default_rng(seed) instead",
        )

    def _stdlib_finding(self, source, node, attr: str) -> Finding | None:
        if attr == "Random":
            if self._has_seed_argument(node):
                return None
            return self.finding(
                source,
                node,
                "DET003",
                "random.Random() without an explicit seed pulls OS entropy; "
                "pass a seed",
            )
        return self.finding(
            source,
            node,
            "DET002",
            f"stdlib random.{attr} relies on hidden global state; use a "
            "seeded np.random.default_rng(seed) instead",
        )

    # ------------------------------------------------------------------
    # DET004: lru_cache misuse
    # ------------------------------------------------------------------
    def _check_caches(self, source: SourceFile) -> Iterator[Finding]:
        """Flag ``functools.lru_cache`` where it leaks or cannot hash."""
        functools_aliases, cache_names = self._collect_cache_imports(source.tree)
        if not functools_aliases and not cache_names:
            return
        methods = {
            func
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
            for func in node.body
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cache_decorator = next(
                (
                    dec
                    for dec in node.decorator_list
                    if self._is_cache_decorator(
                        dec, functools_aliases, cache_names
                    )
                ),
                None,
            )
            if cache_decorator is None:
                continue
            if (
                node in methods
                and not self._is_static(node)
                and node.args.args
                and node.args.args[0].arg == "self"
            ):
                yield self.finding(
                    source,
                    cache_decorator,
                    "DET004",
                    f"lru_cache on instance method {node.name!r} keeps every "
                    "self alive in the cache; hoist the cached work to a "
                    "module-level function of hashable config values",
                )
                continue
            array_params = [
                arg.arg
                for arg in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
                if arg.annotation is not None
                and self._is_array_annotation(arg.annotation)
            ]
            if array_params:
                yield self.finding(
                    source,
                    cache_decorator,
                    "DET004",
                    f"lru_cache on {node.name!r} whose parameter(s) "
                    f"{', '.join(array_params)} are numpy arrays — arrays "
                    "are unhashable, so the cache raises TypeError at call "
                    "time; key on hashable scalars instead",
                )

    @staticmethod
    def _collect_cache_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
        """Local aliases of the functools module and its cache decorators."""
        functools_aliases: set[str] = set()
        cache_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "functools":
                        functools_aliases.add(alias.asname or "functools")
            elif isinstance(node, ast.ImportFrom) and node.module == "functools":
                for alias in node.names:
                    if alias.name in ("lru_cache", "cache"):
                        cache_names.add(alias.asname or alias.name)
        return functools_aliases, cache_names

    @staticmethod
    def _is_cache_decorator(
        dec: ast.expr, functools_aliases: set[str], cache_names: set[str]
    ) -> bool:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if (
            isinstance(target, ast.Attribute)
            and target.attr in ("lru_cache", "cache")
            and isinstance(target.value, ast.Name)
            and target.value.id in functools_aliases
        ):
            return True
        return isinstance(target, ast.Name) and target.id in cache_names

    @staticmethod
    def _is_static(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name == "staticmethod":
                return True
        return False

    @staticmethod
    def _is_array_annotation(annotation: ast.expr) -> bool:
        """True for annotations naming numpy arrays (ndarray / NDArray)."""
        text = ast.unparse(annotation)
        return "ndarray" in text or "NDArray" in text

    @staticmethod
    def _has_seed_argument(node: ast.Call) -> bool:
        """True when the call passes any non-None positional/keyword seed."""
        for arg in node.args:
            if not (isinstance(arg, ast.Constant) and arg.value is None):
                return True
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs: assume the caller knows
                return True
            if not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return True
        return False
