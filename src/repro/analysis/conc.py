"""Pool-determinism pass (``CONC*``), built on the dataflow engine.

The process pool in :mod:`repro.jobs` promises byte-identical results
for ``--jobs N`` and serial runs.  Four rules guard the assumptions that
promise rests on:

- ``CONC001`` — a value derived from iterating an unordered (or
  insertion-ordered) ``dict``/``set`` reaches a serialisation or hashing
  sink — ``hashlib.sha256``-family, ``json.dumps`` *without*
  ``sort_keys=True``, or a ``.put`` store write — via reaching
  definitions.  Iterate ``sorted(...)`` instead so the bytes cannot
  depend on registration/insertion order;
- ``CONC002`` — an RNG is constructed with a seed that *flows from a
  nondeterministic source* (``time.*``, ``os.urandom``, ``uuid4``,
  ``secrets``).  The zero-argument case is already ``DET003``; this is
  the dataflow half;
- ``CONC003`` — a function transitively submitted to the
  :mod:`repro.jobs` pool reads module-level mutable state (dict/list/set
  globals).  Worker processes re-import modules, so parent-process
  mutations diverge; reads wrapped in ``sorted(...)`` are exempt (they
  document order-robust access to import-time registries);
- ``CONC004`` — a ``+=`` accumulation inside a loop over
  ``as_completed(...)`` / ``imap_unordered(...)``: float addition is not
  associative, so the sum depends on which worker finished first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .cfg import CFG, shallow_exprs
from .dataflow import (
    Definition,
    ReachingDefinitions,
    build_cfg,
    iter_functions,
    stmt_defs,
)
from .findings import Finding
from .modgraph import ModuleIndex, ModuleInfo, resolve_callee
from .visitor import ProjectChecker

__all__ = ["ConcChecker"]

_HASH_CTORS = {"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s"}
_RNG_CTORS = {"default_rng", "RandomState", "PCG64", "Philox", "SFC64",
              "Generator", "Random", "seed"}
_NONDET_TIME = {"time", "time_ns", "perf_counter", "perf_counter_ns",
                "monotonic", "monotonic_ns", "process_time"}
_NONDET_OTHER = {"urandom", "getpid", "uuid1", "uuid4", "token_bytes",
                 "token_hex", "randbits", "now", "utcnow"}
_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "OrderedDict",
                  "Counter", "deque"}
_POOL_SUBMITTERS = {"run_tasks", "run_simulations"}
_UNORDERED_METHODS = {"items", "keys", "values"}
_MAX_CLOSURE = 400


class ConcChecker(ProjectChecker):
    """Cross-process determinism hazards under the ``repro.jobs`` pool."""

    name = "conc"
    codes = {
        "CONC001": "unordered dict/set iteration reaches a hash/ledger/"
        "store sink",
        "CONC002": "RNG seeded from a nondeterministic source",
        "CONC003": "module-level mutable state read in a pool-submitted "
        "function",
        "CONC004": "accumulation ordered by pool completion, not "
        "submission",
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        for info in sorted(index.targets(), key=lambda m: m.name):
            for qualname, func in sorted(
                iter_functions(info.source.tree),
                key=lambda pair: pair[1].lineno,
            ):
                yield from self._check_function(index, info, qualname, func)
        yield from self._pool_state_reads(index)

    # -- per-function rules (CONC001/002/004) ----------------------------

    def _check_function(
        self,
        index: ModuleIndex,
        info: ModuleInfo,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        interesting = False
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.Call)):
                interesting = True
                break
        if not interesting:
            return
        cfg = build_cfg(func)
        rdefs = ReachingDefinitions(cfg)
        path = info.source.path
        tainted = self._tainted_definitions(cfg)

        for block in cfg.blocks.values():
            for i, stmt in enumerate(block.stmts):
                for expr in shallow_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        yield from self._check_sink(
                            info, cfg, rdefs, tainted, qualname,
                            block.bid, i, node, path,
                        )
                        yield from self._check_rng_seed(
                            info, rdefs, qualname, block.bid, i, node, path
                        )
        yield from self._completion_order_sums(cfg, qualname, path)

    # CONC001 ------------------------------------------------------------

    def _tainted_definitions(self, cfg: CFG) -> set[Definition]:
        """Definitions whose value may encode dict/set iteration order."""
        tainted: set[Definition] = set()
        unordered_members: set[int] = set()
        for loop in cfg.loops:
            node = loop.node
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_unordered(
                node.iter
            ):
                unordered_members.update(loop.members)
                bid, idx = cfg.location[id(node)]
                for name in stmt_defs(node):
                    tainted.add(
                        Definition(name=name, block=bid, index=idx, node=node)
                    )
        for block in cfg.blocks.values():
            for i, stmt in enumerate(block.stmts):
                if (
                    block.bid in unordered_members
                    and isinstance(stmt, ast.AugAssign)
                ):
                    for name in stmt_defs(stmt):
                        tainted.add(
                            Definition(
                                name=name, block=block.bid, index=i, node=stmt
                            )
                        )
                elif isinstance(stmt, ast.Assign) and _value_unordered(
                    stmt.value
                ):
                    for name in stmt_defs(stmt):
                        tainted.add(
                            Definition(
                                name=name, block=block.bid, index=i, node=stmt
                            )
                        )
        return tainted

    def _check_sink(
        self,
        info: ModuleInfo,
        cfg: CFG,
        rdefs: ReachingDefinitions,
        tainted: set[Definition],
        qualname: str,
        bid: int,
        stmt_index: int,
        call: ast.Call,
        path: str,
    ) -> Iterator[Finding]:
        sink = _sink_kind(info, call)
        if sink is None:
            return
        args: list[ast.expr] = list(call.args)
        args.extend(k.value for k in call.keywords if k.arg != "sort_keys")
        fact = rdefs.before(bid, stmt_index)
        for arg in args:
            if _value_unordered(arg):
                yield self.finding_at(
                    path, call.lineno, call.col_offset, "CONC001",
                    f"{sink} in '{qualname}' consumes a dict/set-iteration "
                    "value directly; wrap the iteration in sorted(...) so "
                    "the bytes cannot depend on insertion order",
                )
                return
            for node in ast.walk(arg):
                if not (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                ):
                    continue
                hits = [
                    d for d in rdefs.of(node.id, fact) if d in tainted
                ]
                if hits:
                    origin = min(
                        getattr(d.node, "lineno", 0) for d in hits
                    )
                    yield self.finding_at(
                        path, call.lineno, call.col_offset, "CONC001",
                        f"{sink} in '{qualname}' consumes '{node.id}', "
                        f"derived from unordered dict/set iteration "
                        f"(line {origin}); iterate sorted(...) instead",
                    )
                    return

    # CONC002 ------------------------------------------------------------

    def _check_rng_seed(
        self,
        info: ModuleInfo,
        rdefs: ReachingDefinitions,
        qualname: str,
        bid: int,
        stmt_index: int,
        call: ast.Call,
        path: str,
    ) -> Iterator[Finding]:
        name = _callee_basename(call.func)
        if name not in _RNG_CTORS:
            return
        seeds: list[ast.expr] = list(call.args[:1])
        seeds.extend(k.value for k in call.keywords if k.arg == "seed")
        if not seeds:
            return  # the zero-arg case is DET003's
        fact = rdefs.before(bid, stmt_index)
        for seed in seeds:
            source = _nondet_source(seed)
            if source is None:
                for node in ast.walk(seed):
                    if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Load
                    ):
                        for definition in rdefs.of(node.id, fact):
                            value = _assigned_value(definition.node)
                            if value is not None:
                                flowed = _nondet_source(value)
                                if flowed is not None:
                                    source = f"{flowed} (via '{node.id}')"
                                    break
                        if source is not None:
                            break
            if source is not None:
                yield self.finding_at(
                    path, call.lineno, call.col_offset, "CONC002",
                    f"RNG '{name}(...)' in '{qualname}' is seeded from "
                    f"{source}; thread a fixed seed through the config "
                    "instead",
                )
                return

    # CONC004 ------------------------------------------------------------

    def _completion_order_sums(
        self, cfg: CFG, qualname: str, path: str
    ) -> Iterator[Finding]:
        for loop in cfg.loops:
            node = loop.node
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iter_name = _callee_basename(
                node.iter.func
            ) if isinstance(node.iter, ast.Call) else None
            if iter_name not in ("as_completed", "imap_unordered"):
                continue
            for bid in sorted(loop.members):
                for stmt in cfg.blocks[bid].stmts:
                    if stmt is node:
                        continue
                    if isinstance(stmt, ast.AugAssign) and isinstance(
                        stmt.op, ast.Add
                    ):
                        yield self.finding_at(
                            path, stmt.lineno, stmt.col_offset, "CONC004",
                            f"accumulation inside the '{iter_name}(...)' "
                            f"loop in '{qualname}' depends on worker "
                            "completion order; float addition is not "
                            "associative — accumulate in submission order "
                            "(executor.map) or sort results first",
                        )

    # CONC003 ------------------------------------------------------------

    def _pool_state_reads(self, index: ModuleIndex) -> Iterator[Finding]:
        mutable_globals = {
            info.name: _mutable_globals(info)
            for info in index.modules.values()
        }
        roots = self._pool_roots(index)
        visited: list[tuple[ModuleInfo, ast.FunctionDef]] = []
        seen: set[int] = set()
        queue = list(roots)
        while queue and len(seen) < _MAX_CLOSURE:
            target_info, func = queue.pop(0)
            if id(func) in seen:
                continue
            seen.add(id(func))
            visited.append((target_info, func))
            shadowed = frozenset(_local_names(func))
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    resolved = resolve_callee(
                        index, target_info, node.func, shadowed
                    )
                    if resolved is not None and isinstance(
                        resolved[1].node,
                        (ast.FunctionDef, ast.AsyncFunctionDef),
                    ):
                        queue.append((resolved[0], resolved[1].node))
        for target_info, func in visited:
            if not target_info.is_target:
                continue
            own_mutables = mutable_globals.get(target_info.name, set())
            if not own_mutables:
                continue
            local = set(_local_names(func))
            parents = _parent_map(func)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in own_mutables
                    and node.id not in local
                ):
                    continue
                if _inside_sorted(node, parents):
                    continue
                yield self.finding_at(
                    target_info.source.path,
                    node.lineno,
                    node.col_offset,
                    "CONC003",
                    f"module-level mutable '{node.id}' is read inside "
                    f"'{func.name}', which runs in repro.jobs pool "
                    "workers; worker processes re-import the module, so "
                    "parent-process mutations diverge — pass the state "
                    "through the job payload or read it via sorted(...) "
                    "if it is an import-time registry",
                )

    def _pool_roots(
        self, index: ModuleIndex
    ) -> list[tuple[ModuleInfo, ast.FunctionDef]]:
        roots: list[tuple[ModuleInfo, ast.FunctionDef]] = []
        for info in index.modules.values():
            for node in ast.walk(info.source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _callee_basename(node.func)
                is_pool_call = name in _POOL_SUBMITTERS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and isinstance(node.func.value, ast.Name)
                    and "executor" in node.func.value.id.lower()
                )
                if not is_pool_call or not node.args:
                    continue
                resolved = resolve_callee(index, info, node.args[0])
                if resolved is None:
                    continue
                target_info, symbol = resolved
                if isinstance(
                    symbol.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    roots.append((target_info, symbol.node))
        return roots


# -- helpers ---------------------------------------------------------------


def _callee_basename(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _strip_wrappers(expr: ast.expr) -> ast.expr:
    """Peel ``list(...)``/``tuple(...)`` conversions (not ``sorted``)."""
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("list", "tuple")
        and len(expr.args) == 1
    ):
        expr = expr.args[0]
    return expr


def _is_unordered(iter_expr: ast.expr) -> bool:
    """True when iterating ``iter_expr`` exposes dict/set ordering."""
    expr = _strip_wrappers(iter_expr)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "sorted"
    ):
        return False
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _UNORDERED_METHODS
        and not expr.args
    ):
        return True
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "set"
    ):
        return True
    return False


def _value_unordered(expr: ast.expr) -> bool:
    """The expression itself materialises an unordered iteration."""
    stripped = _strip_wrappers(expr)
    if _is_unordered(stripped):
        return True
    if isinstance(stripped, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return any(
            _is_unordered(gen.iter) for gen in stripped.generators
        )
    return False


def _sink_kind(info: ModuleInfo, call: ast.Call) -> str | None:
    func = call.func
    name = _callee_basename(func)
    if name in _HASH_CTORS:
        if isinstance(func, ast.Attribute):
            base = func.value
            if not (
                isinstance(base, ast.Name)
                and info.imported_modules.get(base.id, "") == "hashlib"
            ):
                return None
        elif isinstance(func, ast.Name):
            if info.imported_symbols.get(name, ("", ""))[0] != "hashlib":
                return None
        return f"hash key 'hashlib.{name}'"
    if name == "update" and isinstance(func, ast.Attribute):
        return None  # hash .update() handled at construction sites
    if name == "dumps":
        origin_ok = False
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            origin_ok = info.imported_modules.get(func.value.id) == "json"
        elif isinstance(func, ast.Name):
            origin_ok = info.imported_symbols.get(name, ("", ""))[0] == "json"
        if not origin_ok:
            return None
        for keyword in call.keywords:
            if (
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return None
        return "ledger serialisation 'json.dumps' (no sort_keys=True)"
    if name == "put" and isinstance(func, ast.Attribute):
        return f"store write '{_callee_basename(func.value) or ''}.put'"
    return None


def _nondet_source(expr: ast.expr) -> str | None:
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_basename(node.func)
        if name in _NONDET_TIME or name in _NONDET_OTHER:
            return f"nondeterministic '{_describe_call(node)}'"
    return None


def _describe_call(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func) + "()"
    except Exception:  # pragma: no cover
        return "<call>"


def _assigned_value(node: ast.AST) -> ast.expr | None:
    if isinstance(node, ast.Assign):
        return node.value
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return node.value
    return None


def _mutable_globals(info: ModuleInfo) -> set[str]:
    names: set[str] = set()
    for stmt in info.source.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and _callee_basename(value.func) in _MUTABLE_CTORS
            )
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


def _parent_map(func: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _inside_sorted(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    current: ast.AST | None = node
    while current is not None:
        parent = parents.get(id(current))
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and current is not parent.func
        ):
            return True
        current = parent
    return False
