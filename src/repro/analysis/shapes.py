"""Symbolic ndarray shape domain for the abstract interpreter.

A :class:`Dim` is one axis extent: a numeric :class:`~repro.analysis.intervals.Interval`
(possibly an exact constant) plus an optional **symbol** — two dims with
the same symbol are provably equal even when their numeric value is
unknown (``params.oc`` is ``params.oc`` on both sides of a matmul).  A
:class:`Shape` is a tuple of dims, or the unknown-rank TOP.

The operations mirror the numpy semantics the codebase actually uses —
``broadcast``/``matmul``/``reshape``/``transpose``/``concatenate``/
``stack`` and basic slicing — and each returns both the result shape and
a *proof of mismatch* when one exists, so the ``shape`` checker reports
the two inferred operand shapes rather than a bare "incompatible".

Soundness contract: a mismatch is only ever reported when the concrete
shapes **provably** conflict (constant axes that differ and cannot
broadcast, symbol-equal axes aside).  Unknown dims stay silent.  The
hypothesis suite cross-checks :func:`broadcast` against
``np.broadcast_shapes`` on random concrete shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from .intervals import Interval

__all__ = [
    "Dim",
    "Shape",
    "broadcast",
    "concatenate",
    "matmul",
    "reshape",
    "stack",
    "transpose",
]


@dataclasses.dataclass(frozen=True)
class Dim:
    """One axis extent: a numeric range plus an optional symbolic identity."""

    ival: Interval
    sym: str | None = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: int) -> "Dim":
        """An exactly known axis extent."""
        return Dim(ival=Interval.const(value))

    @staticmethod
    def symbol(name: str, ival: Interval | None = None) -> "Dim":
        """A named but numerically unknown extent (``param:oc``)."""
        return Dim(ival=ival if ival is not None else Interval.nonneg(),
                   sym=name)

    @staticmethod
    def top() -> "Dim":
        """A completely unknown extent."""
        return Dim(ival=Interval.nonneg())

    # -- predicates --------------------------------------------------------

    @property
    def value(self) -> int | None:
        """The exact extent when constant, else ``None``."""
        if self.ival.is_const and self.ival.lo >= 0:
            return int(self.ival.lo)
        return None

    def same(self, other: "Dim") -> bool:
        """Provably equal: same symbol, or the same constant."""
        if self.sym is not None and self.sym == other.sym:
            return True
        a, b = self.value, other.value
        return a is not None and a == b

    def disjoint(self, other: "Dim") -> bool:
        """Provably unequal: the numeric ranges share no value."""
        return not self.ival.intersects(other.ival)

    def can_be(self, value: int) -> bool:
        """True unless the extent provably differs from ``value``."""
        return self.ival.contains(float(value))

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Dim") -> "Dim":
        """Least upper bound; keeps the symbol only when both agree."""
        sym = self.sym if self.sym == other.sym else None
        return Dim(ival=self.ival.join(other.ival), sym=sym)

    def substitute(self, bindings: dict[str, "Dim"]) -> "Dim":
        """Replace a symbolic dim by its call-site binding, if any."""
        if self.sym is not None and self.sym in bindings:
            return bindings[self.sym]
        return self

    def __str__(self) -> str:
        if self.value is not None:
            return str(self.value)
        if self.sym is not None:
            return self.sym.rpartition(":")[2] or self.sym
        return "?"


@dataclasses.dataclass(frozen=True)
class Shape:
    """A tuple of axis extents, or the unknown-rank TOP (``dims is None``)."""

    dims: tuple[Dim, ...] | None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "Shape":
        """Unknown rank and extents."""
        return Shape(dims=None)

    @staticmethod
    def of(*extents: int) -> "Shape":
        """A fully constant shape."""
        return Shape(dims=tuple(Dim.const(e) for e in extents))

    @staticmethod
    def from_dims(dims: Iterable[Dim]) -> "Shape":
        """A shape from explicit dims."""
        return Shape(dims=tuple(dims))

    # -- predicates --------------------------------------------------------

    @property
    def rank(self) -> int | None:
        """Number of axes, or ``None`` when unknown."""
        return None if self.dims is None else len(self.dims)

    @property
    def is_top(self) -> bool:
        """True when nothing is known."""
        return self.dims is None

    def concrete(self) -> tuple[int, ...] | None:
        """The exact shape when every axis is constant, else ``None``."""
        if self.dims is None:
            return None
        out = []
        for dim in self.dims:
            if dim.value is None:
                return None
            out.append(dim.value)
        return tuple(out)

    def size(self) -> Interval:
        """Interval of the element count (product of extents)."""
        if self.dims is None:
            return Interval.nonneg()
        total = Interval.const(1)
        for dim in self.dims:
            total = total.mul(dim.ival)
        return total.meet(Interval.nonneg())

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Shape") -> "Shape":
        """Least upper bound; rank disagreement collapses to TOP."""
        if self.dims is None or other.dims is None:
            return Shape.top()
        if len(self.dims) != len(other.dims):
            return Shape.top()
        return Shape(
            dims=tuple(a.join(b) for a, b in zip(self.dims, other.dims))
        )

    def substitute(self, bindings: dict[str, Dim]) -> "Shape":
        """Apply call-site symbol bindings to every axis."""
        if self.dims is None:
            return self
        return Shape(dims=tuple(d.substitute(bindings) for d in self.dims))

    def __str__(self) -> str:
        if self.dims is None:
            return "(?)"
        inner = ", ".join(str(d) for d in self.dims)
        if len(self.dims) == 1:
            inner += ","
        return f"({inner})"


# -- numpy operation models ------------------------------------------------


def broadcast(a: Shape, b: Shape) -> tuple[Shape, tuple[Dim, Dim] | None]:
    """Numpy broadcasting of two shapes.

    Returns ``(result, conflict)`` where ``conflict`` is the provably
    incompatible ``(dim_a, dim_b)`` pair, if any (neither side can be 1
    and the extents are provably different).  With any unknown rank the
    result is TOP and no conflict is ever claimed.
    """
    if a.dims is None or b.dims is None:
        return Shape.top(), None
    rank = max(len(a.dims), len(b.dims))
    out: list[Dim] = []
    conflict: tuple[Dim, Dim] | None = None
    for axis in range(rank):
        da = a.dims[len(a.dims) - rank + axis] if axis >= rank - len(a.dims) \
            else Dim.const(1)
        db = b.dims[len(b.dims) - rank + axis] if axis >= rank - len(b.dims) \
            else Dim.const(1)
        if da.value == 1:
            out.append(db)
            continue
        if db.value == 1:
            out.append(da)
            continue
        if da.same(db):
            out.append(da)
            continue
        if da.disjoint(db) and not da.can_be(1) and not db.can_be(1):
            conflict = conflict or (da, db)
            out.append(da.join(db))
            continue
        # Maybe-equal / maybe-1: the result extent is one of the two.
        out.append(da.join(db))
    return Shape(dims=tuple(out)), conflict


def matmul(a: Shape, b: Shape) -> tuple[Shape, tuple[Dim, Dim] | None]:
    """``a @ b`` / ``np.matmul``/2-D ``np.dot`` shape algebra.

    Returns ``(result, conflict)``; ``conflict`` is the provably unequal
    contraction pair ``(a[-1], b[-2])`` (or ``b[-1]`` for 1-D ``b``).
    Batch axes are broadcast; batch conflicts are *not* reported here —
    the contraction axis is the high-signal check.
    """
    if a.dims is None or b.dims is None:
        return Shape.top(), None
    if len(a.dims) == 0 or len(b.dims) == 0:
        return Shape.top(), None
    inner_a = a.dims[-1]
    inner_b = b.dims[-2] if len(b.dims) >= 2 else b.dims[-1]
    conflict = None
    if not inner_a.same(inner_b) and inner_a.disjoint(inner_b):
        conflict = (inner_a, inner_b)
    if len(a.dims) == 1 and len(b.dims) == 1:
        return Shape(dims=()), conflict
    if len(a.dims) == 1:
        return Shape(dims=(*b.dims[:-2], b.dims[-1])), conflict
    if len(b.dims) == 1:
        return Shape(dims=a.dims[:-1]), conflict
    batch, _ = broadcast(
        Shape(dims=a.dims[:-2]), Shape(dims=b.dims[:-2])
    )
    if batch.dims is None:
        return Shape.top(), conflict
    return Shape(dims=(*batch.dims, a.dims[-2], b.dims[-1])), conflict


def reshape(
    source: Shape, target: Shape
) -> tuple[Shape, tuple[int, int] | None]:
    """``a.reshape(target)``: element counts must agree.

    Returns ``(result, counts)`` where ``counts`` is the provably
    mismatched ``(source_size, target_size)`` pair when both are exact
    constants and differ.  A ``-1`` wildcard axis (modelled as an
    unknown dim) suppresses the check, as does any unknown extent.
    """
    if target.dims is None:
        return Shape.top(), None
    src_size = source.size()
    dst_size = target.size()
    if (
        src_size.is_const
        and dst_size.is_const
        and src_size.lo != dst_size.lo
    ):
        return target, (int(src_size.lo), int(dst_size.lo))
    return target, None


def transpose(source: Shape, axes: tuple[int, ...] | None = None) -> Shape:
    """``a.T`` / ``np.transpose`` / ``a.transpose(axes)``."""
    if source.dims is None:
        return Shape.top()
    if axes is None:
        return Shape(dims=tuple(reversed(source.dims)))
    if sorted(axes) != list(range(len(source.dims))):
        return Shape.top()
    return Shape(dims=tuple(source.dims[i] for i in axes))


def concatenate(
    shapes: list[Shape], axis: int = 0
) -> tuple[Shape, tuple[int, Dim, Dim] | None]:
    """``np.concatenate(seq, axis)``.

    All non-concatenation axes must agree; returns ``(result, conflict)``
    with the first provably mismatched ``(axis, dim_a, dim_b)``.
    """
    known = [s for s in shapes if s.dims is not None]
    if not known or len(known) != len(shapes):
        return Shape.top(), None
    rank = known[0].rank
    assert rank is not None
    if any(s.rank != rank for s in known) or rank == 0:
        return Shape.top(), None
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        return Shape.top(), None
    out: list[Dim] = []
    conflict: tuple[int, Dim, Dim] | None = None
    for i in range(rank):
        dims = [s.dims[i] for s in known]  # type: ignore[index]
        if i == axis:
            total = Interval.const(0)
            for dim in dims:
                total = total.add(dim.ival)
            out.append(Dim(ival=total.meet(Interval.nonneg())))
            continue
        merged = dims[0]
        for dim in dims[1:]:
            if not merged.same(dim) and merged.disjoint(dim):
                conflict = conflict or (i, merged, dim)
            merged = merged.join(dim)
        out.append(merged)
    return Shape(dims=tuple(out)), conflict


def stack(
    shapes: list[Shape], axis: int = 0
) -> tuple[Shape, tuple[int, Dim, Dim] | None]:
    """``np.stack(seq, axis)``: all shapes must agree exactly."""
    known = [s for s in shapes if s.dims is not None]
    if not known or len(known) != len(shapes):
        return Shape.top(), None
    rank = known[0].rank
    assert rank is not None
    if any(s.rank != rank for s in known):
        return Shape.top(), None
    if axis < 0:
        axis += rank + 1
    if not 0 <= axis <= rank:
        return Shape.top(), None
    conflict: tuple[int, Dim, Dim] | None = None
    merged: list[Dim] = list(known[0].dims)  # type: ignore[arg-type]
    for s in known[1:]:
        for i, dim in enumerate(s.dims):  # type: ignore[arg-type]
            if not merged[i].same(dim) and merged[i].disjoint(dim):
                conflict = conflict or (i, merged[i], dim)
            merged[i] = merged[i].join(dim)
    count = Dim.const(len(shapes))
    dims = (*merged[:axis], count, *merged[axis:])
    return Shape(dims=dims), conflict
