"""Finding records emitted by the static-analysis checkers.

A :class:`Finding` pins one defect to a file/line/column with a stable
code (``UNIT001``, ``DET002``, ...).  Codes group into checker families by
prefix — the same family names the suppression syntax uses
(``# repro-lint: ignore[unit]``).

Abstract-interpretation findings (``SHAPE``/``BND``) additionally carry a
``data`` payload with the inferred shapes/intervals that prove the
defect; it rides along in the JSON report (schema v4) but never takes
part in ordering, equality or the baseline identity.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Finding", "GROUPS", "group_of"]

#: Code prefix -> suppression-group name.
GROUPS = {
    "UNIT": "unit",
    "DET": "det",
    "CFG": "cfg",
    "EXP": "exp",
    "VER": "ver",
    "ARCH": "arch",
    "FLOW": "flow",
    "DEAD": "dead",
    "PERF": "perf",
    "CONC": "conc",
    "SUP": "sup",
    "SHAPE": "shape",
    "SCHEME": "scheme",
    "BND": "bound",
}


def group_of(code: str) -> str:
    """The suppression-group name of a finding code (``UNIT001`` -> ``unit``)."""
    prefix = code.rstrip("0123456789")
    try:
        return GROUPS[prefix]
    except KeyError:
        raise ValueError(f"unknown finding code prefix {prefix!r}") from None


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis defect, sortable by location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Checker-specific evidence (inferred shapes/intervals as strings);
    #: excluded from comparison so findings stay hashable and orderable.
    data: dict | None = dataclasses.field(
        default=None, compare=False, hash=False
    )

    @property
    def group(self) -> str:
        """Checker family this finding belongs to (``unit``/``det``/...)."""
        return group_of(self.code)

    def to_dict(self) -> dict:
        """JSON-serializable representation (round-trips via :meth:`from_dict`)."""
        doc = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "group": self.group,
            "message": self.message,
        }
        if self.data is not None:
            doc["data"] = dict(self.data)
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            code=data["code"],
            message=data["message"],
            data=data.get("data"),
        )

    def render(self) -> str:
        """One-line ``path:line:col CODE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"
