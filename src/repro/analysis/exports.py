"""Export-hygiene checker (``EXP*``).

Keeps each module's public surface honest so ``from repro.x import *``,
the docs and the re-exporting ``__init__`` files never drift from the
actual definitions:

- ``EXP001`` — ``__all__`` names something the module never defines;
- ``EXP002`` — a public top-level ``def``/``class`` is missing from the
  module's declared ``__all__``;
- ``EXP003`` — a package module with public definitions declares no
  ``__all__`` at all;
- ``EXP004`` — a public top-level ``def``/``class`` has no docstring.

``EXP003``/``EXP004`` only apply to *package* modules (an ``__init__.py``
sits next to the file); standalone scripts in ``examples/`` and
``benchmarks/`` are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["ExportChecker"]


def _in_package(path: str) -> bool:
    parent = Path(path).resolve().parent
    return (parent / "__init__.py").exists()


def _all_assignments(tree: ast.Module):
    """Yield (node, names) for each top-level ``__all__`` assignment."""
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        names = []
        value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append((elt, elt.value))
        yield stmt, names


def _top_level_definitions(tree: ast.Module) -> set[str]:
    """Every name bound at module top level (defs, classes, assigns, imports)."""
    defined: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                defined.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            defined.update(_target_names(stmt.target))
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                defined.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Guarded definitions (TYPE_CHECKING blocks, optional imports).
            for sub in ast.walk(stmt):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    defined.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            defined.add(alias.asname or alias.name.split(".")[0])
    return defined


def _target_names(target: ast.AST) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for elt in target.elts:
            names.update(_target_names(elt))
        return names
    return set()


class ExportChecker(Checker):
    """Keep ``__all__``, public defs and docstrings in sync."""

    name = "exp"
    codes = {
        "EXP001": "__all__ lists a name the module does not define",
        "EXP002": "public definition missing from __all__",
        "EXP003": "package module with public definitions lacks __all__",
        "EXP004": "public definition lacks a docstring",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        tree = source.tree
        in_package = _in_package(source.path)
        defined = _top_level_definitions(tree)
        declared: set[str] = set()
        has_all = False
        for stmt, names in _all_assignments(tree):
            has_all = True
            for node, name in names:
                declared.add(name)
                if name not in defined:
                    yield self.finding(
                        source,
                        node,
                        "EXP001",
                        f"__all__ lists {name!r} but the module never "
                        "defines it",
                    )

        public_defs = [
            stmt
            for stmt in tree.body
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not stmt.name.startswith("_")
        ]
        if has_all:
            for stmt in public_defs:
                if stmt.name not in declared:
                    yield self.finding(
                        source,
                        stmt,
                        "EXP002",
                        f"public {self._kind(stmt)} {stmt.name!r} is missing "
                        "from __all__",
                    )
        elif in_package and public_defs:
            yield self.finding(
                source,
                tree.body[0] if tree.body else tree,
                "EXP003",
                f"module defines {len(public_defs)} public name(s) but "
                "declares no __all__",
            )
        if in_package:
            for stmt in public_defs:
                if ast.get_docstring(stmt) is None:
                    yield self.finding(
                        source,
                        stmt,
                        "EXP004",
                        f"public {self._kind(stmt)} {stmt.name!r} has no "
                        "docstring",
                    )

    @staticmethod
    def _kind(stmt: ast.AST) -> str:
        return "class" if isinstance(stmt, ast.ClassDef) else "function"
