"""Interprocedural unit-flow checker (``FLOW*``).

The ``unit`` checker reasons inside one expression; this pass follows a
quantity **across a call site**.  Using the whole-program module index it
resolves each call to the function (or config-dataclass constructor) that
actually receives the value — through from-imports, module aliases and
``__init__`` re-export chains — then compares the unit suffix of every
argument expression with the suffix of the parameter it binds to:

- ``FLOW001`` — argument and parameter disagree on *dimension*
  (``simulate(total_pj)`` into ``def simulate(total_cycles)``);
- ``FLOW002`` — same dimension, different *scale* (a ``_nj`` value into
  a ``_pj`` parameter: silently off by 1000x);
- ``FLOW003`` — at an assignment site, the callee's **return
  expressions** carry a consistent unit that contradicts the target's
  suffix; fires only when the callee's *name* carries no unit (that
  case is already ``UNIT004``), so this is the genuinely
  interprocedural half.

Resolution is module-level and execution-free: names shadowed by
function parameters or local assignments are never resolved, ``*args``
stops positional matching, and unknown callees are skipped — the pass
prefers silence to a false positive.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from .findings import Finding
from .modgraph import ModuleIndex, ModuleInfo, SymbolDef, resolve_callee
from .units import Unit, parse_unit
from .visitor import ProjectChecker

__all__ = ["FlowChecker", "Signature", "callee_signature", "infer_expr_unit"]


@dataclasses.dataclass(frozen=True)
class Signature:
    """What a call site needs to know about a callee."""

    module: str
    name: str
    kind: str  # "function" | "class"
    #: positional-or-keyword parameter names, in order (no self).
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    name_unit: Unit | None
    #: units inferred from the function's own return expressions.
    return_units: tuple[Unit, ...]


def infer_expr_unit(node: ast.AST) -> Unit | None:
    """Unit carried by an expression, from trailing name tokens only.

    A deliberately shallow mirror of the ``unit`` checker's inference:
    names and attributes by suffix, calls by callee name, unary sign
    transparent, additive chains must agree, multiplicative operators
    erase (conversions are legal there).
    """
    if isinstance(node, ast.Name):
        return parse_unit(node.id)
    if isinstance(node, ast.Attribute):
        return parse_unit(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return parse_unit(func.attr)
        if isinstance(func, ast.Name):
            return parse_unit(func.id)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return infer_expr_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = infer_expr_unit(node.left)
        right = infer_expr_unit(node.right)
        if left is not None and right is not None:
            if left.same_dimension(right) and left.same_scale(right):
                return left
            return None
        return left if right is None else right
    return None


def callee_signature(info: ModuleInfo, symbol: SymbolDef) -> Signature | None:
    """Signature of a resolved callee, or ``None`` when unintrospectable."""
    node = symbol.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return _function_signature(info, node, kind="function", drop_self=False)
    if isinstance(node, ast.ClassDef):
        init = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ),
            None,
        )
        if init is not None:
            return _function_signature(info, init, kind="class", drop_self=True)
        if _is_dataclass(node):
            fields = tuple(
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            )
            if fields:
                return Signature(
                    module=info.name,
                    name=node.name,
                    kind="class",
                    params=fields,
                    kwonly=(),
                    has_vararg=False,
                    has_kwarg=False,
                    name_unit=parse_unit(node.name),
                    return_units=(),
                )
        return None
    return None


def _function_signature(
    info: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    kind: str,
    drop_self: bool,
) -> Signature:
    args = node.args
    params = tuple(a.arg for a in (*args.posonlyargs, *args.args))
    if drop_self and params:
        params = params[1:]
    return Signature(
        module=info.name,
        name=node.name,
        kind=kind,
        params=params,
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        name_unit=parse_unit(node.name),
        return_units=_return_units(node) if kind == "function" else (),
    )


def _return_units(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[Unit, ...]:
    units: list[Unit] = []
    stack = list(node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            unit = infer_expr_unit(stmt.value)
            if unit is not None:
                units.append(unit)
        stack.extend(ast.iter_child_nodes(stmt))
    return tuple(units)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


class FlowChecker(ProjectChecker):
    """Unit agreement across resolved call sites and return assignments."""

    name = "flow"
    codes = {
        "FLOW001": "call argument unit dimension disagrees with the callee "
        "parameter's suffix",
        "FLOW002": "call argument scale disagrees with the callee "
        "parameter's suffix (same dimension)",
        "FLOW003": "assigned call result contradicts the callee's inferred "
        "return unit",
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        signatures: dict[tuple[str, str], Signature | None] = {}
        for info in sorted(index.targets(), key=lambda m: m.name):
            yield from self._check_module(index, info, signatures)

    # -- per-module walk -------------------------------------------------

    def _check_module(
        self,
        index: ModuleIndex,
        info: ModuleInfo,
        signatures: dict[tuple[str, str], Signature | None],
    ) -> Iterator[Finding]:
        findings: list[Finding] = []

        def resolve(func: ast.AST, shadowed: frozenset[str]) -> Signature | None:
            resolved = resolve_callee(index, info, func, shadowed)
            if resolved is None:
                return None
            target_info, symbol = resolved
            key = (target_info.name, symbol.name)
            if key not in signatures:
                signatures[key] = callee_signature(target_info, symbol)
            return signatures[key]

        def visit(node: ast.AST, shadowed: frozenset[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                shadowed = shadowed | _local_bindings(node)
            elif isinstance(node, ast.Lambda):
                shadowed = shadowed | {a.arg for a in node.args.args}
            if isinstance(node, ast.Call):
                signature = resolve(node.func, shadowed)
                if signature is not None:
                    findings.extend(self._check_call(info, node, signature))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if isinstance(value, ast.Call):
                    signature = resolve(value.func, shadowed)
                    if signature is not None:
                        findings.extend(
                            self._check_result(info, node, value, signature)
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, shadowed)

        visit(info.source.tree, frozenset())
        yield from findings

    # -- FLOW001/002: arguments ------------------------------------------

    def _check_call(
        self, info: ModuleInfo, call: ast.Call, signature: Signature
    ) -> Iterator[Finding]:
        bindings: list[tuple[str, ast.AST]] = []
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if position >= len(signature.params):
                break
            bindings.append((signature.params[position], arg))
        named = set(signature.params) | set(signature.kwonly)
        for keyword in call.keywords:
            if keyword.arg is None:  # **kwargs expansion
                continue
            if keyword.arg in named:
                bindings.append((keyword.arg, keyword.value))
        for param, expr in bindings:
            expected = parse_unit(param)
            if expected is None:
                continue
            actual = infer_expr_unit(expr)
            if actual is None:
                continue
            where = (
                f"{signature.kind} {signature.module}.{signature.name}"
            )
            if not actual.same_dimension(expected):
                yield self.finding_at(
                    info.source.path,
                    expr.lineno,
                    expr.col_offset,
                    "FLOW001",
                    f"argument {actual.describe()} flows into parameter "
                    f"'{param}' ({expected.describe()}) of {where}",
                )
            elif not actual.same_scale(expected):
                yield self.finding_at(
                    info.source.path,
                    expr.lineno,
                    expr.col_offset,
                    "FLOW002",
                    f"argument [{actual.token}] flows into parameter "
                    f"'{param}' expecting [{expected.token}] of {where} "
                    "(convert explicitly)",
                )

    # -- FLOW003: return assignment --------------------------------------

    def _check_result(
        self,
        info: ModuleInfo,
        assign: ast.Assign | ast.AnnAssign,
        call: ast.Call,
        signature: Signature,
    ) -> Iterator[Finding]:
        if signature.name_unit is not None:
            return  # the local unit checker (UNIT004) already covers this
        returned = _consistent_unit(signature.return_units)
        if returned is None:
            return
        targets = (
            assign.targets if isinstance(assign, ast.Assign) else [assign.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                expected = parse_unit(target.id)
            elif isinstance(target, ast.Attribute):
                expected = parse_unit(target.attr)
            else:
                continue
            if expected is None:
                continue
            if not returned.same_dimension(expected) or not returned.same_scale(
                expected
            ):
                yield self.finding_at(
                    info.source.path,
                    assign.lineno,
                    assign.col_offset,
                    "FLOW003",
                    f"{signature.module}.{signature.name} returns "
                    f"{returned.describe()} but the target declares "
                    f"{expected.describe()}",
                )


def _consistent_unit(units: tuple[Unit, ...]) -> Unit | None:
    """The single unit all return expressions agree on, else ``None``."""
    if not units:
        return None
    first = units[0]
    for unit in units[1:]:
        if not first.same_dimension(unit) or not first.same_scale(unit):
            return None
    return first


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names + names assigned anywhere inside ``node``."""
    args = node.args
    bound = {
        a.arg
        for a in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        )
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                bound.update(_names_in_target(target))
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign, ast.For)):
            target = sub.target
            bound.update(_names_in_target(target))
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    bound.update(_names_in_target(item.optional_vars))
    return bound


def _names_in_target(target: ast.AST) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for elt in target.elts:
            names.update(_names_in_target(elt))
        return names
    if isinstance(target, ast.Starred):
        return _names_in_target(target.value)
    return set()
