"""Unit-consistency lint (``UNIT*``).

The reproduction encodes physical units in names — ``energy_pj``,
``area_mm2``, ``runtime_s``, ``compute_cycles``, ``sram_bytes`` — so a
dimensional analysis can run over the AST with no type annotations: infer
a unit for every name/attribute/call from its trailing name tokens,
propagate through ``+``/``-`` (which must preserve units) and erase
through ``*``/``/`` (which legitimately convert), then flag:

- ``UNIT001`` — ``+``/``-``/comparison between different dimensions
  (energy vs cycles);
- ``UNIT002`` — same dimension, different scale (pJ vs nJ, mm^2 vs um^2)
  without an explicit conversion factor;
- ``UNIT003`` — a ``return`` whose inferred unit contradicts the
  function's own unit suffix (``def area_mm2`` returning ``x_um2``);
- ``UNIT004`` — assignment to a unit-suffixed name from an expression of
  a different unit.

Compound units use the ``_per_`` convention: ``bytes_per_s`` is a
bandwidth, ``pj_per_byte`` an access energy.  A divisor word that is not
itself a unit token (``per_toggle``, ``per_variable``) does not change
the dimension — only recognized units form compounds.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["UnitChecker", "parse_unit", "Unit"]

#: token -> (dimension, scale relative to the dimension's base unit).
_UNIT_TOKENS: dict[str, tuple[str, float]] = {
    # energy (base: joule)
    "j": ("energy", 1.0),
    "joules": ("energy", 1.0),
    "mj": ("energy", 1e-3),
    "uj": ("energy", 1e-6),
    "nj": ("energy", 1e-9),
    "pj": ("energy", 1e-12),
    "fj": ("energy", 1e-15),
    # power (base: watt)
    "w": ("power", 1.0),
    "watts": ("power", 1.0),
    "mw": ("power", 1e-3),
    "uw": ("power", 1e-6),
    "nw": ("power", 1e-9),
    # time (base: second)
    "s": ("time", 1.0),
    "seconds": ("time", 1.0),
    "ms": ("time", 1e-3),
    "us": ("time", 1e-6),
    "ns": ("time", 1e-9),
    # area (base: square metre)
    "mm2": ("area", 1e-6),
    "um2": ("area", 1e-12),
    # frequency (base: hertz)
    "hz": ("frequency", 1.0),
    "khz": ("frequency", 1e3),
    "mhz": ("frequency", 1e6),
    "ghz": ("frequency", 1e9),
    # data volume (base: byte)
    "byte": ("bytes", 1.0),
    "bytes": ("bytes", 1.0),
    "kb": ("bytes", 1024.0),
    "mb": ("bytes", 2.0**20),
    "gb": ("bytes", 2.0**30),
    "bit": ("bits", 1.0),
    "bits": ("bits", 1.0),
    # discrete counts
    "cycle": ("cycles", 1.0),
    "cycles": ("cycles", 1.0),
    "macs": ("macs", 1.0),
    "ge": ("gate-equivalents", 1.0),
}

#: Tokens that carry a unit even as a whole bare name (``cycles``, ``ge``).
#: Short tokens like ``s``, ``w`` or ``bits`` only count as *suffixes* —
#: a loop variable ``s`` or an operand width ``bits`` is not a quantity.
_BARE_NAME_TOKENS = {"cycles", "bytes", "macs", "ge", "joules", "seconds", "watts"}

#: Whole-name shorthands for common compound units.
_SHORTHANDS: dict[str, tuple[str, float, str]] = {
    "gbps": ("bytes", 1e9, "time"),
    "gops": ("ops", 1e9, "time"),
}


@dataclasses.dataclass(frozen=True)
class Unit:
    """An inferred unit: dimension, scale and optional ``per`` divisor."""

    dim: str
    scale: float
    per: str | None
    token: str

    def describe(self) -> str:
        """Human-readable form for messages, e.g. ``energy[pj]/bytes``."""
        base = f"{self.dim}[{self.token}]"
        return f"{base}/{self.per}" if self.per else base

    def same_dimension(self, other: "Unit") -> bool:
        return self.dim == other.dim and self.per == other.per

    def same_scale(self, other: "Unit") -> bool:
        return self.scale == other.scale


def parse_unit(name: str) -> Unit | None:
    """Infer the unit carried by an identifier, or ``None``.

    ``read_energy_per_byte_j`` -> energy[j]/bytes; ``runtime_s`` ->
    time[s]; ``dram_bandwidth_gbps`` -> bytes[gbps]/time.
    """
    tokens = [t for t in name.lower().split("_") if t]
    if not tokens:
        return None
    last = tokens[-1]
    if last in _SHORTHANDS:
        dim, scale, per = _SHORTHANDS[last]
        return Unit(dim=dim, scale=scale, per=per, token=last)
    if "per" in tokens:
        i = len(tokens) - 1 - tokens[::-1].index("per")
        if i + 1 < len(tokens):
            divisor = _UNIT_TOKENS.get(tokens[i + 1])
            rest = tokens[:i] + tokens[i + 2 :]
            num_tok = rest[-1] if rest else None
            numerator = _UNIT_TOKENS.get(num_tok) if num_tok else None
            if numerator is not None:
                if divisor is not None:
                    return Unit(
                        dim=numerator[0],
                        scale=numerator[1],
                        per=divisor[0],
                        token=num_tok,
                    )
                # Unrecognized divisor word (per_toggle, per_variable):
                # it does not change the dimension, keep the numerator.
                return Unit(
                    dim=numerator[0], scale=numerator[1], per=None, token=num_tok
                )
    if last in _UNIT_TOKENS and (len(tokens) > 1 or last in _BARE_NAME_TOKENS):
        dim, scale = _UNIT_TOKENS[last]
        return Unit(dim=dim, scale=scale, per=None, token=last)
    return None


class _Unitless:
    """Sentinel for dimensionless numeric constants (compatible with all)."""


UNITLESS = _Unitless()

_ADDITIVE = (ast.Add, ast.Sub)
_ERASING = (
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.LShift,
    ast.RShift,
    ast.BitAnd,
    ast.BitOr,
    ast.BitXor,
    ast.MatMult,
)
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class UnitChecker(Checker):
    """Dimensional-analysis lint over unit-suffixed names."""

    name = "unit"
    codes = {
        "UNIT001": "arithmetic or comparison mixes incompatible unit dimensions",
        "UNIT002": "arithmetic mixes different scales of the same dimension",
        "UNIT003": "return value unit contradicts the function's unit suffix",
        "UNIT004": "assignment unit contradicts the target's unit suffix",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        findings: list[Finding] = []
        seen_binops: set[int] = set()

        for node in ast.walk(source.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
                if id(node) in seen_binops:
                    continue
                self._infer(node, source, findings, seen_binops)
            elif isinstance(node, ast.Compare):
                self._check_compare(node, source, findings, seen_binops)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_returns(node, source, findings, seen_binops)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_assign(node, source, findings, seen_binops)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ADDITIVE
            ):
                self._check_augassign(node, source, findings, seen_binops)
        yield from findings

    # -- inference -------------------------------------------------------

    def _infer(self, node, source, findings, seen):
        """Infer the unit of ``node``: a Unit, UNITLESS, or None (unknown)."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return UNITLESS
            return None
        if isinstance(node, ast.Name):
            return parse_unit(node.id)
        if isinstance(node, ast.Attribute):
            return parse_unit(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                return parse_unit(func.attr)
            if isinstance(func, ast.Name):
                return parse_unit(func.id)
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self._infer(node.operand, source, findings, seen)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, _ADDITIVE):
                seen.add(id(node))
                left = self._infer(node.left, source, findings, seen)
                right = self._infer(node.right, source, findings, seen)
                return self._combine(node, left, right, source, findings)
            if isinstance(node.op, _ERASING):
                # Conversions happen through * and /: descend only to find
                # nested additive conflicts, then erase the unit.
                for child in (node.left, node.right):
                    if isinstance(child, ast.BinOp) and isinstance(
                        child.op, _ADDITIVE
                    ):
                        if id(child) not in seen:
                            self._infer(child, source, findings, seen)
                return None
            return None
        if isinstance(node, ast.IfExp):
            body = self._infer(node.body, source, findings, seen)
            orelse = self._infer(node.orelse, source, findings, seen)
            if isinstance(body, Unit) and isinstance(orelse, Unit):
                if body.same_dimension(orelse) and body.same_scale(orelse):
                    return body
            return None
        return None

    def _combine(self, node, left, right, source, findings):
        """Unit of ``left <op> right`` for additive ops, flagging conflicts."""
        if left is None or right is None:
            return None
        if left is UNITLESS:
            return right
        if right is UNITLESS:
            return left
        if not left.same_dimension(right):
            findings.append(
                self.finding(
                    source,
                    node,
                    "UNIT001",
                    f"incompatible units in '+/-': {left.describe()} vs "
                    f"{right.describe()}",
                )
            )
            return None
        if not left.same_scale(right):
            findings.append(
                self.finding(
                    source,
                    node,
                    "UNIT002",
                    f"mixed scales of {left.dim}: [{left.token}] vs "
                    f"[{right.token}] (convert explicitly)",
                )
            )
            return None
        return left

    # -- statement-level checks ------------------------------------------

    def _check_compare(self, node, source, findings, seen):
        if not all(isinstance(op, _ORDERED_CMP) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        units = [self._infer(o, source, findings, seen) for o in operands]
        known = [u for u in units if isinstance(u, Unit)]
        for a, b in zip(known, known[1:]):
            if not a.same_dimension(b):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "UNIT001",
                        f"comparison mixes units: {a.describe()} vs "
                        f"{b.describe()}",
                    )
                )
                return
            if not a.same_scale(b):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "UNIT002",
                        f"comparison mixes scales of {a.dim}: [{a.token}] "
                        f"vs [{b.token}]",
                    )
                )
                return

    def _check_returns(self, func, source, findings, seen):
        expected = parse_unit(func.name)
        if expected is None:
            return
        for stmt in self._own_returns(func):
            if stmt.value is None:
                continue
            actual = self._infer(stmt.value, source, findings, seen)
            if not isinstance(actual, Unit):
                continue
            if not actual.same_dimension(expected) or not actual.same_scale(
                expected
            ):
                findings.append(
                    self.finding(
                        source,
                        stmt,
                        "UNIT003",
                        f"'{func.name}' returns {actual.describe()} but its "
                        f"name declares {expected.describe()}",
                    )
                )

    @staticmethod
    def _own_returns(func):
        """Return statements of ``func`` itself, skipping nested functions."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.Return):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_assign(self, node, source, findings, seen):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None:
            return
        actual = self._infer(value, source, findings, seen)
        if not isinstance(actual, Unit):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                expected = parse_unit(target.id)
            elif isinstance(target, ast.Attribute):
                expected = parse_unit(target.attr)
            else:
                continue
            if expected is None:
                continue
            if not actual.same_dimension(expected) or not actual.same_scale(
                expected
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "UNIT004",
                        f"assigning {actual.describe()} to a name declaring "
                        f"{expected.describe()}",
                    )
                )

    def _check_augassign(self, node, source, findings, seen):
        if isinstance(node.target, ast.Name):
            expected = parse_unit(node.target.id)
        elif isinstance(node.target, ast.Attribute):
            expected = parse_unit(node.target.attr)
        else:
            return
        if expected is None:
            return
        actual = self._infer(node.value, source, findings, seen)
        if not isinstance(actual, Unit):
            return
        if not actual.same_dimension(expected):
            findings.append(
                self.finding(
                    source,
                    node,
                    "UNIT001",
                    f"incompatible units in '+=/-=': {expected.describe()} "
                    f"vs {actual.describe()}",
                )
            )
        elif not actual.same_scale(expected):
            findings.append(
                self.finding(
                    source,
                    node,
                    "UNIT002",
                    f"mixed scales of {expected.dim} in '+=/-=': "
                    f"[{expected.token}] vs [{actual.token}]",
                )
            )
