"""Shape-algebra lint (``SHAPE*``), on the abstract interpreter.

The ``shape`` pass evaluates every shallow statement of every function
against the post-fixpoint interval/shape environments of
:mod:`repro.analysis.absint` and reports only **provable** conflicts:

- ``SHAPE001`` — a ``@``/``np.matmul``/``np.dot`` contraction pair, or a
  broadcast of elementwise operands, whose extents provably differ;
- ``SHAPE002`` — a ``reshape`` whose source and target element counts
  are exact constants and differ;
- ``SHAPE003`` — ``np.concatenate``/``np.stack`` (and ``vstack``/
  ``hstack``) inputs that provably disagree on a non-concatenation axis;
- ``SHAPE004`` — a ``return`` whose inferred shape contradicts the
  function docstring's declared ``shape (d1, d2, ...)`` contract (the
  convention: an all-integer parenthesised shape after the word
  ``shape``).

Every finding carries the inferred evidence in ``Finding.data`` — the
two operand shapes, the element counts, or the declared-vs-inferred
pair — which the JSON report (schema v4) exposes per finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .absint import FunctionAnalysis, Interpreter, interpreter_for
from .cfg import shallow_exprs
from .dataflow import iter_functions
from .findings import Finding
from .modgraph import ModuleIndex, ModuleInfo
from .shapes import Shape, broadcast, concatenate, matmul, reshape, stack
from .visitor import ProjectChecker

__all__ = ["ShapeChecker"]

#: elementwise operators that broadcast their ndarray operands.
_ELEMENTWISE = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)

#: docstring contract: an all-integer shape after the word "shape".
_SHAPE_CONTRACT = re.compile(
    r"shape\s*\(\s*(\d+\s*(?:,\s*\d+\s*)*),?\s*\)", re.IGNORECASE
)

#: ast tokens whose presence makes a function worth analysing here.
_TRIGGER_ATTRS = {
    "reshape", "transpose", "concatenate", "stack", "vstack", "hstack",
    "matmul", "dot", "zeros", "ones", "empty", "full", "zeros_like",
    "ones_like", "empty_like", "full_like", "eye", "arange", "linspace",
    "array", "asarray",
}


class ShapeChecker(ProjectChecker):
    """Prove ndarray dimension algebra at lint time (SHAPE001-004)."""

    name = "shape"
    codes = {
        "SHAPE001": (
            "matmul/broadcast operand extents provably mismatch"
        ),
        "SHAPE002": "reshape provably changes the element count",
        "SHAPE003": (
            "concatenate/stack inputs disagree on a non-stacked axis"
        ),
        "SHAPE004": (
            "return shape contradicts the docstring shape contract"
        ),
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        interp = interpreter_for(index)
        for info in sorted(index.targets(), key=lambda m: m.name):
            for qualname, func in sorted(
                iter_functions(info.source.tree),
                key=lambda pair: pair[1].lineno,
            ):
                if not _worth_analysing(func):
                    continue
                yield from self._check_function(interp, info, func)

    # -- per-function walk -----------------------------------------------

    def _check_function(
        self,
        interp: Interpreter,
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        fa = interp.analysis(info, func)
        contract = _shape_contract(func)
        for stmt, env in fa.statements():
            for root in shallow_exprs(stmt):
                for node, node_env in fa.walk_refined(root, env):
                    if isinstance(node, ast.BinOp):
                        yield from self._check_binop(info, fa, node, node_env)
                    elif isinstance(node, ast.Call):
                        yield from self._check_call(info, fa, node, node_env)
            if (
                contract is not None
                and isinstance(stmt, ast.Return)
                and stmt.value is not None
            ):
                yield from self._check_contract(
                    info, fa, stmt, env, contract
                )

    # -- SHAPE001 --------------------------------------------------------

    def _check_binop(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        node: ast.BinOp,
        env: dict,
    ) -> Iterator[Finding]:
        left = fa.eval(node.left, env)
        right = fa.eval(node.right, env)
        if not (left.is_array and right.is_array):
            return
        if isinstance(node.op, ast.MatMult):
            _, conflict = matmul(left.shape, right.shape)
            if conflict is not None:
                yield self._shape001(
                    info, node, "matmul contraction", left.shape, right.shape
                )
        elif isinstance(node.op, _ELEMENTWISE):
            _, conflict = broadcast(left.shape, right.shape)
            if conflict is not None:
                yield self._shape001(
                    info, node, "broadcast", left.shape, right.shape
                )

    def _shape001(
        self,
        info: ModuleInfo,
        node: ast.AST,
        what: str,
        left: Shape,
        right: Shape,
    ) -> Finding:
        return self.finding_at(
            info.source.path,
            node.lineno,
            node.col_offset,
            "SHAPE001",
            f"{what} of provably incompatible shapes "
            f"{left} and {right}",
            data={"left": str(left), "right": str(right)},
        )

    # -- SHAPE002 / SHAPE003 (and call-form SHAPE001) --------------------

    def _check_call(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        call: ast.Call,
        env: dict,
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        is_numpy = (
            isinstance(func.value, ast.Name)
            and func.value.id in fa.interp.numpy_aliases(info)
        )
        if is_numpy and func.attr in ("matmul", "dot") and len(call.args) == 2:
            a = fa.eval(call.args[0], env)
            b = fa.eval(call.args[1], env)
            if a.is_array and b.is_array:
                _, conflict = matmul(a.shape, b.shape)
                if conflict is not None:
                    yield self._shape001(
                        info, call, "matmul contraction", a.shape, b.shape
                    )
            return
        if is_numpy and func.attr in (
            "concatenate", "stack", "vstack", "hstack"
        ):
            yield from self._check_concat(info, fa, call, env, func.attr)
            return
        if func.attr == "reshape":
            yield from self._check_reshape(info, fa, call, env, is_numpy)

    def _check_reshape(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        call: ast.Call,
        env: dict,
        is_numpy: bool,
    ) -> Iterator[Finding]:
        if is_numpy:
            if len(call.args) < 2:
                return
            source = fa.eval(call.args[0], env)
            target_args = call.args[1:]
        else:
            source = fa.eval(call.func.value, env)  # type: ignore[attr-defined]
            target_args = call.args
        if not source.is_array or not target_args:
            return
        target = fa.reshape_target(list(target_args), env)
        _, counts = reshape(source.shape, target)
        if counts is not None:
            yield self.finding_at(
                info.source.path,
                call.lineno,
                call.col_offset,
                "SHAPE002",
                f"reshape of {source.shape} ({counts[0]} elements) to "
                f"{target} ({counts[1]} elements) provably changes the "
                f"element count",
                data={
                    "source": str(source.shape),
                    "target": str(target),
                    "elements": [counts[0], counts[1]],
                },
            )

    def _check_concat(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        call: ast.Call,
        env: dict,
        attr: str,
    ) -> Iterator[Finding]:
        if not call.args:
            return
        shapes = fa.sequence_shapes(call.args[0], env)
        if shapes is None:
            return
        if attr == "stack":
            axis = fa.axis_of(call, env, default=0) or 0
            _, conflict = stack(shapes, axis)
        else:
            axis = {"vstack": 0, "hstack": -1}.get(
                attr, fa.axis_of(call, env, default=0) or 0
            )
            _, conflict = concatenate(shapes, axis)
        if conflict is not None:
            which, da, db = conflict
            yield self.finding_at(
                info.source.path,
                call.lineno,
                call.col_offset,
                "SHAPE003",
                f"np.{attr} inputs provably disagree on axis {which} "
                f"({da} vs {db})",
                data={
                    "axis": which,
                    "left": str(da),
                    "right": str(db),
                    "shapes": [str(s) for s in shapes],
                },
            )

    # -- SHAPE004 --------------------------------------------------------

    def _check_contract(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        stmt: ast.Return,
        env: dict,
        contract: tuple[int, ...],
    ) -> Iterator[Finding]:
        assert stmt.value is not None
        inferred = fa.eval(stmt.value, env)
        if not inferred.is_array or inferred.shape.dims is None:
            return
        declared = Shape.of(*contract)
        dims = inferred.shape.dims
        mismatch = len(dims) != len(contract) or any(
            dim.disjoint(decl)
            for dim, decl in zip(dims, declared.dims or ())
        )
        if mismatch:
            yield self.finding_at(
                info.source.path,
                stmt.lineno,
                stmt.col_offset,
                "SHAPE004",
                f"return shape {inferred.shape} contradicts the docstring "
                f"contract shape {declared}",
                data={
                    "declared": str(declared),
                    "inferred": str(inferred.shape),
                },
            )


def _worth_analysing(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Cheap gate: does the function touch any shape-bearing construct?"""
    doc = ast.get_docstring(func)
    if doc and _SHAPE_CONTRACT.search(doc):
        return True
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return True
        if isinstance(node, ast.Attribute) and node.attr in _TRIGGER_ATTRS:
            return True
    return False


def _shape_contract(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[int, ...] | None:
    """The all-integer docstring shape contract, if declared."""
    doc = ast.get_docstring(func)
    if not doc:
        return None
    match = _SHAPE_CONTRACT.search(doc)
    if match is None:
        return None
    return tuple(int(part) for part in match.group(1).split(","))
