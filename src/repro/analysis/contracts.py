"""Runtime-contract helpers backing the config ``validate()`` methods.

The static side of the config contract (``CFG001``-``CFG003``) demands a
``validate()`` on every ``*Config``/``*Params`` dataclass; this module is
the runtime side — small predicates that raise ``ValueError`` with
field-specific messages so a nonsensical configuration (0-row array,
negative SRAM banks, non-power-of-two bitstream length) fails loudly at
construction instead of silently corrupting a sweep.

Kept free of imports from the rest of ``repro`` so config modules at any
layer can depend on it without cycles.
"""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "require",
    "require_positive",
    "require_non_negative",
    "require_power_of_two",
    "require_in_range",
    "require_at_most",
]


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for zero, negatives and non-ints."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def require(condition: bool, owner: str, field: str, message: str) -> None:
    """Raise ``ValueError`` naming ``owner.field`` unless ``condition``."""
    if not condition:
        raise ValueError(f"{owner}.{field}: {message}")


def require_positive(owner: str, **fields: float) -> None:
    """Every named field must be strictly positive."""
    for name, value in fields.items():
        require(value > 0, owner, name, f"must be positive, got {value!r}")


def require_non_negative(owner: str, **fields: float) -> None:
    """Every named field must be zero or positive."""
    for name, value in fields.items():
        require(value >= 0, owner, name, f"must be >= 0, got {value!r}")


def require_power_of_two(owner: str, **fields: int) -> None:
    """Every named field must be a power of two."""
    for name, value in fields.items():
        require(
            is_power_of_two(value),
            owner,
            name,
            f"must be a power of two, got {value!r}",
        )


def require_in_range(
    owner: str, field: str, value: float, lo: float, hi: float
) -> None:
    """``lo <= value <= hi`` or ``ValueError``."""
    require(
        lo <= value <= hi,
        owner,
        field,
        f"must be in [{lo}, {hi}], got {value!r}",
    )


def require_at_most(
    owner: str, field: str, value: float, bound: float, bound_name: str
) -> None:
    """``value <= bound`` or ``ValueError`` naming both quantities."""
    require(
        value <= bound,
        owner,
        field,
        f"must be <= {bound_name} ({bound!r}), got {value!r}",
    )
