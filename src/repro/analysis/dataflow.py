"""Generic dataflow solver + the analyses the PERF/CONC passes consume.

A :class:`DataflowAnalysis` names a direction, a boundary fact, a join
and a block transfer; :func:`solve` runs the optimistic worklist
iteration over a :class:`~repro.analysis.cfg.CFG` to the fixpoint.  On
top of the generic solver:

- :class:`ReachingDefinitions` — which textual definitions of a name may
  reach a statement (parameters count as entry definitions);
- :class:`LiveVariables` — backward liveness, per block;
- :class:`NdarrayTypes` — a three-point lattice (``array`` / ``other`` /
  unknown) over local names, seeded from numpy-module aliases, resolved
  in-project callees whose return annotation names ``ndarray``,
  parameter annotations, and — as a scalar hint — the FLOW unit
  vocabulary (a ``*_cycles`` / ``*_pj`` name is a quantity, not an
  array).

Statements are the *shallow* statements of the CFG: transfers never look
inside a compound statement's body (those live in other blocks); the
header expressions come from :func:`~repro.analysis.cfg.shallow_exprs`.

All analyses are per-function and flow-insensitive across calls — the
checkers built on top (``perf``/``conc``) accept that a *may* answer is
the right default for lint.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Iterator

from .cfg import CFG, BasicBlock, build_cfg, shallow_exprs
from .modgraph import ModuleIndex, ModuleInfo, resolve_callee
from .units import parse_unit

__all__ = [
    "ArraySeeds",
    "DataflowAnalysis",
    "Definition",
    "LiveVariables",
    "NdarrayTypes",
    "ReachingDefinitions",
    "SolveStats",
    "array_seeds",
    "iter_functions",
    "solve",
    "stmt_defs",
    "stmt_uses",
]


# -- shallow def/use extraction --------------------------------------------


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript targets mutate, they do not bind a local name.


def stmt_defs(stmt: ast.stmt) -> list[str]:
    """Local names a shallowly placed statement binds (header view)."""
    names: list[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name.split(".", 1)[0]
            names.append(local)
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        names.append(stmt.name)
    return names


def stmt_uses(stmt: ast.stmt) -> list[ast.Name]:
    """``Name`` loads a shallowly placed statement itself evaluates."""
    uses: list[ast.Name] = []
    for expr in shallow_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.append(node)
    return uses


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in a module with a dotted qualifier (methods too)."""
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                stack.append((f"{qualname}.", child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))
            elif not isinstance(child, ast.Lambda):
                stack.append((prefix, child))


# -- generic solver --------------------------------------------------------


class DataflowAnalysis:
    """One dataflow problem: direction, lattice operations, transfer."""

    direction = "forward"  # or "backward"

    def boundary(self) -> Any:
        """Fact at the entry (forward) or exit (backward) boundary."""
        raise NotImplementedError

    def initial(self) -> Any:
        """Fact for a block no computed predecessor reaches."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Least upper bound of two facts at a merge point."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, fact: Any) -> Any:
        """Fact after executing ``block`` given the fact before it."""
        raise NotImplementedError

    def edge_transfer(self, src: BasicBlock, dst: int, fact: Any) -> Any:
        """Refine ``fact`` as it flows along the edge ``src -> dst``.

        Called at merge points before the join, once per computed
        upstream block (``src`` precedes ``dst`` in *analysis* order, so
        for a backward analysis ``src`` is an execution-order successor).
        The default is the identity; the abstract interpreter overrides
        it to narrow facts by the branch condition recorded in
        ``CFG.cond_edges``.
        """
        return fact


@dataclasses.dataclass
class SolveStats:
    """Observability for one :func:`solve` run (pass ``stats=``).

    ``visits[bid]`` counts how many times block ``bid``'s out-fact
    *changed* after its first computation; ``damped`` counts how many
    times the per-block visit budget forced a dampening join.  A
    well-behaved widening analysis keeps ``damped == 0`` — the
    regression test in ``tests/analysis/test_abstract_props.py`` pins
    that for the interval interpreter.
    """

    visits: dict[int, int] = dataclasses.field(default_factory=dict)
    damped: int = 0
    budget: int = 0


def _reverse_postorder(cfg: CFG, start: int, forward: bool) -> list[int]:
    """Blocks reachable from ``start``, predecessors-first in flow order."""
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, Iterator[int]]] = []
    seen.add(start)
    succs = sorted(
        cfg.blocks[start].succs if forward else cfg.blocks[start].preds
    )
    stack.append((start, iter(succs)))
    while stack:
        bid, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                block = cfg.blocks[nxt]
                stack.append(
                    (nxt, iter(sorted(block.succs if forward else block.preds)))
                )
                advanced = True
                break
        if not advanced:
            stack.pop()
            order.append(bid)
    order.reverse()
    return order


def solve(
    cfg: CFG,
    analysis: DataflowAnalysis,
    visit_budget: int | None = None,
    stats: SolveStats | None = None,
) -> dict[int, tuple[Any, Any]]:
    """Worklist fixpoint; maps block id -> (fact before, fact after).

    "Before"/"after" are in *execution* order for both directions (for a
    backward analysis the transfer runs against execution order, but the
    returned pair is still ``(at block entry, at block exit)``).

    The worklist seeds in reverse postorder from the boundary block, so a
    block's predecessors are (back edges aside) computed before the block
    itself and an uncomputed predecessor is simply skipped at the join
    (= treated as ⊤) rather than collapsed to ``initial()``; injecting
    ``initial()`` mid-iteration is what made the intersection-join ndarray
    analysis oscillate.  ``initial()`` now only ever feeds blocks that are
    unreachable from the boundary (dead code after ``return``/``raise``).

    Termination is guaranteed even for a non-monotone transfer: past a
    per-block visit budget — ``visit_budget``, defaulting to
    ``8 + 4 * len(cfg.blocks)`` — the new fact is dampened through
    ``analysis.join`` with the old one, which is a no-op for monotone
    analyses (the join of an ascending pair is the new fact) and forces
    disagreeing entries to resolve for oscillating ones — the dampened
    sequence moves one way through a finite lattice, so it stops.  The
    budget is a backstop, not a convergence mechanism: an analysis over
    an infinite-height lattice must widen in its own transfer (see
    ``repro.analysis.absint``), and can pass a :class:`SolveStats` to
    assert ``damped == 0`` afterwards.
    """
    forward = analysis.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def preds(bid: int) -> set[int]:
        block = cfg.blocks[bid]
        return block.preds if forward else block.succs

    rpo = _reverse_postorder(cfg, start, forward)
    unreachable = [bid for bid in sorted(cfg.blocks) if bid not in set(rpo)]
    visit_cap = (
        visit_budget if visit_budget is not None else 8 + 4 * len(cfg.blocks)
    )
    if stats is not None:
        stats.budget = visit_cap

    out: dict[int, Any] = {}  # fact on the downstream side, optimistic ⊤
    worklist = [*rpo, *unreachable]
    in_worklist = set(worklist)
    visits: dict[int, int] = {}
    inputs: dict[int, Any] = {}
    while worklist:
        bid = worklist.pop(0)
        in_worklist.discard(bid)
        if bid == start:
            fact = analysis.boundary()
        else:
            fact = None
            for pred in preds(bid):
                if pred in out:
                    along = analysis.edge_transfer(
                        cfg.blocks[pred], bid, out[pred]
                    )
                    fact = (
                        along
                        if fact is None
                        else analysis.join(fact, along)
                    )
            if fact is None:
                fact = analysis.initial()
        inputs[bid] = fact
        new_out = analysis.transfer(cfg.blocks[bid], fact)
        if bid in out:
            if out[bid] == new_out:
                continue
            visits[bid] = visits.get(bid, 0) + 1
            if stats is not None:
                stats.visits[bid] = visits[bid]
            if visits[bid] > visit_cap:
                if stats is not None:
                    stats.damped += 1
                new_out = analysis.join(out[bid], new_out)
                if out[bid] == new_out:
                    continue
        out[bid] = new_out
        block = cfg.blocks[bid]
        for succ in block.succs if forward else block.preds:
            if succ not in in_worklist:
                worklist.append(succ)
                in_worklist.add(succ)
    if forward:
        return {bid: (inputs[bid], out[bid]) for bid in cfg.blocks}
    return {bid: (out[bid], inputs[bid]) for bid in cfg.blocks}


# -- reaching definitions --------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Definition:
    """One textual definition site of a local name."""

    name: str
    block: int
    #: statement index inside the block; -1 marks a parameter binding.
    index: int
    node: ast.AST = dataclasses.field(compare=False, hash=False, repr=False)


class _ReachingProblem(DataflowAnalysis):
    direction = "forward"

    def __init__(self, rd: "ReachingDefinitions") -> None:
        self._rd = rd

    def boundary(self) -> frozenset[Definition]:
        return self._rd.param_defs

    def initial(self) -> frozenset[Definition]:
        return frozenset()

    def join(
        self, a: frozenset[Definition], b: frozenset[Definition]
    ) -> frozenset[Definition]:
        return a | b

    def transfer(
        self, block: BasicBlock, fact: frozenset[Definition]
    ) -> frozenset[Definition]:
        for i in range(len(block.stmts)):
            fact = self._rd.step(block.bid, i, fact)
        return fact


class ReachingDefinitions:
    """Which definitions of each name may reach each statement."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        args = cfg.func.args
        params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        self.param_defs = frozenset(
            Definition(name=a.arg, block=cfg.entry, index=-1, node=a)
            for a in params
        )
        self._stmt_defs: dict[tuple[int, int], tuple[Definition, ...]] = {}
        for block in cfg.blocks.values():
            for i, stmt in enumerate(block.stmts):
                self._stmt_defs[(block.bid, i)] = tuple(
                    Definition(name=name, block=block.bid, index=i, node=stmt)
                    for name in stmt_defs(stmt)
                )
        solution = solve(cfg, _ReachingProblem(self))
        self.block_in = {bid: pair[0] for bid, pair in solution.items()}

    def step(
        self, bid: int, index: int, fact: frozenset[Definition]
    ) -> frozenset[Definition]:
        """Apply statement ``(bid, index)``'s kill/gen to ``fact``."""
        new_defs = self._stmt_defs[(bid, index)]
        if not new_defs:
            return fact
        killed = {d.name for d in new_defs}
        return (
            frozenset(d for d in fact if d.name not in killed) | set(new_defs)
        )

    def before(self, bid: int, index: int) -> frozenset[Definition]:
        """Definitions reaching just before statement ``index`` of ``bid``."""
        fact = self.block_in[bid]
        for i in range(index):
            fact = self.step(bid, i, fact)
        return fact

    def of(
        self, name: str, fact: frozenset[Definition]
    ) -> tuple[Definition, ...]:
        """The definitions of ``name`` within ``fact``, in stable order."""
        return tuple(
            sorted(
                (d for d in fact if d.name == name),
                key=lambda d: (d.block, d.index),
            )
        )


# -- live variables --------------------------------------------------------


class _LivenessProblem(DataflowAnalysis):
    direction = "backward"

    def boundary(self) -> frozenset[str]:
        return frozenset()

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a | b

    def transfer(
        self, block: BasicBlock, fact: frozenset[str]
    ) -> frozenset[str]:
        for stmt in reversed(block.stmts):
            fact = fact - frozenset(stmt_defs(stmt))
            fact = fact | frozenset(n.id for n in stmt_uses(stmt))
        return fact


class LiveVariables:
    """Backward liveness over local names, per block boundary."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        solution = solve(cfg, _LivenessProblem())
        self.block_in = {bid: pair[0] for bid, pair in solution.items()}
        self.block_out = {bid: pair[1] for bid, pair in solution.items()}

    def live_in(self, bid: int) -> frozenset[str]:
        """Names live on entry to block ``bid``."""
        return self.block_in[bid]

    def live_out(self, bid: int) -> frozenset[str]:
        """Names live on exit from block ``bid``."""
        return self.block_out[bid]


# -- ndarray typedness -----------------------------------------------------

ARRAY = "array"
OTHER = "other"

#: numpy constructors whose result is an ndarray.
_NP_ARRAY_FUNCS = {
    "array", "asarray", "ascontiguousarray", "zeros", "zeros_like", "ones",
    "ones_like", "empty", "empty_like", "full", "full_like", "arange",
    "linspace", "concatenate", "stack", "vstack", "hstack", "tile", "repeat",
    "where", "clip", "cumsum", "cumprod", "sort", "argsort", "unique",
    "reshape", "ravel", "take", "maximum", "minimum", "abs", "sign",
    "bincount", "searchsorted", "pad", "roll", "flip", "split",
}

#: ndarray methods whose result is again an ndarray.
_ARRAY_METHODS = {
    "astype", "reshape", "copy", "ravel", "flatten", "clip", "round",
    "take", "transpose", "cumsum", "repeat", "squeeze", "view",
}

#: expression forms that are definitely not ndarrays.
_SCALARIZERS = {"tolist", "item"}


@dataclasses.dataclass(frozen=True)
class ArraySeeds:
    """Module-level facts that seed the ndarray lattice for one function."""

    #: local names bound to the numpy module (``np``).
    numpy_aliases: frozenset[str]
    #: local callables known (by annotation) to return an ndarray.
    array_returning: frozenset[str]


def _annotation_mentions_array(ann: ast.AST | None) -> bool:
    if ann is None:
        return False
    for node in ast.walk(ann):
        if isinstance(node, ast.Name) and node.id in ("ndarray", "NDArray"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "ndarray",
            "NDArray",
        ):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "ndarray" in node.value or "NDArray" in node.value:
                return True
    return False


def _annotation_is_scalar(ann: ast.AST | None) -> bool:
    return (
        isinstance(ann, ast.Name)
        and ann.id in ("int", "float", "bool", "str", "bytes")
    )


def array_seeds(
    index: ModuleIndex | None,
    info: ModuleInfo | None,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ArraySeeds:
    """Collect the module facts :class:`NdarrayTypes` needs for ``func``.

    ``array_returning`` holds every *local* name that resolves — through
    the module index — to an in-project function whose return annotation
    names ``ndarray`` (this is how ``repro.unary``'s kernel signatures
    seed the lattice in callers).
    """
    numpy_aliases: set[str] = set()
    array_returning: set[str] = set()
    if info is not None:
        for local, module in info.imported_modules.items():
            if module == "numpy" or module.startswith("numpy."):
                numpy_aliases.add(local)
        if index is not None:
            candidates: set[str] = set(info.imported_symbols)
            candidates.update(info.defs)
            for name in candidates:
                resolved = resolve_callee(
                    index, info, ast.Name(id=name, ctx=ast.Load())
                )
                if resolved is None:
                    continue
                node = resolved[1].node
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _annotation_mentions_array(node.returns):
                    array_returning.add(name)
    return ArraySeeds(
        numpy_aliases=frozenset(numpy_aliases),
        array_returning=frozenset(array_returning),
    )


class _NdarrayProblem(DataflowAnalysis):
    direction = "forward"

    def __init__(self, types: "NdarrayTypes") -> None:
        self._types = types

    def boundary(self) -> dict[str, str]:
        return dict(self._types.entry_env)

    def initial(self) -> dict[str, str]:
        return {}

    def join(self, a: dict[str, str], b: dict[str, str]) -> dict[str, str]:
        return {k: v for k, v in a.items() if b.get(k) == v}

    def transfer(
        self, block: BasicBlock, fact: dict[str, str]
    ) -> dict[str, str]:
        env = dict(fact)
        for stmt in block.stmts:
            self._types.step(stmt, env)
        return env


class NdarrayTypes:
    """Forward ``array``/``other``/unknown typedness of local names."""

    def __init__(self, cfg: CFG, seeds: ArraySeeds) -> None:
        self.cfg = cfg
        self.seeds = seeds
        self.entry_env: dict[str, str] = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_mentions_array(arg.annotation):
                self.entry_env[arg.arg] = ARRAY
            elif _annotation_is_scalar(arg.annotation):
                self.entry_env[arg.arg] = OTHER
        solution = solve(cfg, _NdarrayProblem(self))
        self.block_in = {bid: pair[0] for bid, pair in solution.items()}

    # -- expression classification ---------------------------------------

    def kind_of(self, expr: ast.AST, env: dict[str, str]) -> str | None:
        """``"array"``, ``"other"`` or ``None`` (unknown) for ``expr``."""
        if isinstance(expr, ast.Name):
            kind = env.get(expr.id)
            if kind is not None:
                return kind
            # FLOW unit vocabulary: a unit-suffixed name is a quantity.
            return OTHER if parse_unit(expr.id) is not None else None
        if isinstance(expr, ast.Constant):
            return OTHER
        if isinstance(
            expr,
            (
                ast.List,
                ast.Tuple,
                ast.Set,
                ast.Dict,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
                ast.JoinedStr,
                ast.Compare,
            ),
        ):
            return OTHER
        if isinstance(expr, ast.Call):
            return self._call_kind(expr, env)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T" and self.kind_of(expr.value, env) == ARRAY:
                return ARRAY
            return None
        if isinstance(expr, ast.Subscript):
            if self.kind_of(expr.value, env) == ARRAY and _slices(expr.slice):
                return ARRAY
            return None
        if isinstance(expr, ast.BinOp):
            left = self.kind_of(expr.left, env)
            right = self.kind_of(expr.right, env)
            if ARRAY in (left, right):
                return ARRAY
            if left == OTHER and right == OTHER:
                return OTHER
            return None
        if isinstance(expr, ast.UnaryOp):
            return self.kind_of(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            body = self.kind_of(expr.body, env)
            orelse = self.kind_of(expr.orelse, env)
            return body if body == orelse else None
        if isinstance(expr, ast.Starred):
            return self.kind_of(expr.value, env)
        return None

    def _call_kind(self, call: ast.Call, env: dict[str, str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.seeds.array_returning:
                return ARRAY
            if func.id in ("len", "int", "float", "bool", "str", "sum",
                           "min", "max", "list", "dict", "set", "tuple",
                           "sorted", "range", "enumerate", "zip"):
                return OTHER
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in _SCALARIZERS:
                return OTHER
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.seeds.numpy_aliases
            ):
                return ARRAY if func.attr in _NP_ARRAY_FUNCS else None
            if (
                func.attr in _ARRAY_METHODS
                and self.kind_of(base, env) == ARRAY
            ):
                return ARRAY
            return None
        return None

    # -- transfer --------------------------------------------------------

    def step(self, stmt: ast.stmt, env: dict[str, str]) -> None:
        """Mutate ``env`` with the effect of one shallow statement."""
        if isinstance(stmt, ast.Assign):
            kind = self.kind_of(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, kind, env)
        elif isinstance(stmt, ast.AnnAssign):
            if _annotation_mentions_array(stmt.annotation):
                kind: str | None = ARRAY
            elif _annotation_is_scalar(stmt.annotation):
                kind = OTHER
            elif stmt.value is not None:
                kind = self.kind_of(stmt.value, env)
            else:
                kind = None
            self._bind(stmt.target, kind, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # The element kind of an iterable is unknown in general (a 2-D
            # array yields rows, a 1-D array yields scalars): drop targets.
            self._bind(stmt.target, None, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, env)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            env[stmt.name] = OTHER
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for name in stmt_defs(stmt):
                env.pop(name, None)

    def _bind(
        self, target: ast.AST, kind: str | None, env: dict[str, str]
    ) -> None:
        if isinstance(target, ast.Name):
            if kind is None:
                env.pop(target.id, None)
            else:
                env[target.id] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, env)

    def env_before(self, bid: int, index: int) -> dict[str, str]:
        """The environment just before statement ``index`` of block ``bid``."""
        env = dict(self.block_in[bid])
        for stmt in self.cfg.blocks[bid].stmts[:index]:
            self.step(stmt, env)
        return env


def _slices(node: ast.AST) -> bool:
    """True when a subscript's index keeps at least one axis (a slice)."""
    if isinstance(node, ast.Slice):
        return True
    if isinstance(node, ast.Tuple):
        return any(_slices(elt) for elt in node.elts)
    return False
