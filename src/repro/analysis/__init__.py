"""Repo-native static analysis and runtime contracts.

``repro.analysis`` keeps the reproduction honest about the physical
quantities it models.  Five AST checkers run over the tree via
``python -m repro.analysis`` (and the CI lint job / pytest gate):

- **unit** (``UNIT*``) — dimensional analysis over unit-suffixed names
  (``_pj``, ``_um2``, ``_cycles``, ``_bytes``, ``ge``, ``_per_``
  compounds);
- **det** (``DET*``) — hidden-global-state and unseeded RNG detection;
- **cfg** (``CFG*``) — the frozen-dataclass + ``validate()`` contract on
  every ``*Config``/``*Params`` class;
- **exp** (``EXP*``) — ``__all__``/docstring export hygiene;
- **ver** (``VER*``) — verification traceability: vectorised kernels
  must cross-reference the scalar model ``repro.verify`` diffs them
  against.

:mod:`repro.analysis.contracts` carries the runtime half of the config
contract.  Suppress individual findings with
``# repro-lint: ignore[group-or-code]``; see ``docs/analysis.md``.
"""

from __future__ import annotations

from .config_checks import ConfigChecker
from .determinism import DeterminismChecker
from .exports import ExportChecker
from .findings import Finding
from .reporting import render_json, render_text
from .runner import ALL_CHECKERS, default_paths, main, run_analysis
from .units import UnitChecker, parse_unit
from .verification import VerificationChecker
from .visitor import Checker, SourceFile, collect_sources

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "ConfigChecker",
    "DeterminismChecker",
    "ExportChecker",
    "Finding",
    "SourceFile",
    "UnitChecker",
    "VerificationChecker",
    "collect_sources",
    "default_paths",
    "main",
    "parse_unit",
    "render_json",
    "render_text",
    "run_analysis",
]
