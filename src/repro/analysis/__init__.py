"""Repo-native static analysis and runtime contracts.

``repro.analysis`` keeps the reproduction honest about the physical
quantities it models and the architecture it promised.  Per-file AST
checkers run alongside whole-program passes over a shared one-parse
module index, via ``python -m repro.analysis`` (and the CI lint job /
pytest gate):

- **unit** (``UNIT*``) — dimensional analysis over unit-suffixed names
  (``_pj``, ``_um2``, ``_cycles``, ``_bytes``, ``ge``, ``_per_``
  compounds);
- **det** (``DET*``) — hidden-global-state and unseeded RNG detection;
- **cfg** (``CFG*``) — the frozen-dataclass + ``validate()`` contract on
  every ``*Config``/``*Params`` class;
- **exp** (``EXP*``) — ``__all__``/docstring export hygiene;
- **ver** (``VER*``) — verification traceability: vectorised kernels
  must cross-reference the scalar model ``repro.verify`` diffs them
  against;
- **arch** (``ARCH*``) — the declared layer DAG (``analysis.layers``):
  forbidden upward imports, import-time cycles, undeclared packages;
- **flow** (``FLOW*``) — interprocedural unit flow: argument/parameter
  and return/assignment unit agreement across resolved call sites;
- **dead** (``DEAD*``) — ``__all__`` exports and modules unreachable
  from every entrypoint, test, example and benchmark;
- **perf** (``PERF*``) — hot-path vectorisation: element-wise ndarray
  loops, reducible accumulations, in-loop allocation, loop-invariant
  pure calls — built on per-function CFGs (``analysis.cfg``) and the
  dataflow solver (``analysis.dataflow``), ranked by measured cProfile
  time under ``--profile``;
- **conc** (``CONC*``) — pool-determinism: unordered dict/set iteration
  reaching hash/ledger sinks, nondeterministically seeded RNGs,
  module-level mutable state read by pool workers, completion-order
  accumulation;
- **shape** (``SHAPE*``) — ndarray dimension algebra proved by abstract
  interpretation (``analysis.absint``): matmul/broadcast extent
  mismatches, element-count-changing reshapes, ragged concatenations,
  docstring shape-contract violations;
- **bound** (``BND*``) — interval proofs over the cycle/energy algebra:
  possibly-zero divisors, provably negative unit-suffixed sinks,
  indices escaping a constant axis extent, constructor arguments that
  contradict the class's own ``validate()`` contract;
- **sup** (``SUP001``) — suppression comments that suppress nothing.

:mod:`repro.analysis.contracts` carries the runtime half of the config
contract.  Suppress individual findings with
``# repro-lint: ignore[group-or-code]``; freeze known debt in
``analysis-baseline.json`` (ratcheted: it may only shrink); see
``docs/analysis.md``.
"""

from __future__ import annotations

from .absint import AbsValue, FunctionAnalysis, Interpreter, interpreter_for
from .arch import ArchChecker
from .baseline import Baseline, BaselineDelta
from .bounds import BoundChecker
from .cfg import CFG, build_cfg
from .conc import ConcChecker
from .config_checks import ConfigChecker
from .dataflow import (
    LiveVariables,
    NdarrayTypes,
    ReachingDefinitions,
    SolveStats,
)
from .dead import DeadChecker
from .determinism import DeterminismChecker
from .exports import ExportChecker
from .findings import Finding
from .flow import FlowChecker
from .intervals import Interval
from .modgraph import ModuleIndex, build_index, module_name_for
from .perf import PerfChecker
from .reporting import render_json, render_text
from .shapecheck import ShapeChecker
from .shapes import Dim, Shape
from .runner import (
    ALL_CHECKERS,
    PROJECT_CHECKERS,
    AnalysisResult,
    analyze,
    context_paths,
    default_paths,
    main,
    run_analysis,
    update_architecture_doc,
)
from .units import UnitChecker, parse_unit
from .verification import VerificationChecker
from .visitor import Checker, ProjectChecker, SourceFile, collect_sources

__all__ = [
    "ALL_CHECKERS",
    "PROJECT_CHECKERS",
    "AbsValue",
    "AnalysisResult",
    "ArchChecker",
    "Baseline",
    "BaselineDelta",
    "BoundChecker",
    "CFG",
    "Checker",
    "ConcChecker",
    "ConfigChecker",
    "DeadChecker",
    "DeterminismChecker",
    "Dim",
    "ExportChecker",
    "Finding",
    "FlowChecker",
    "FunctionAnalysis",
    "Interpreter",
    "Interval",
    "LiveVariables",
    "ModuleIndex",
    "NdarrayTypes",
    "PerfChecker",
    "ProjectChecker",
    "ReachingDefinitions",
    "Shape",
    "ShapeChecker",
    "SolveStats",
    "SourceFile",
    "UnitChecker",
    "VerificationChecker",
    "analyze",
    "build_cfg",
    "build_index",
    "collect_sources",
    "context_paths",
    "default_paths",
    "interpreter_for",
    "main",
    "module_name_for",
    "parse_unit",
    "render_json",
    "render_text",
    "run_analysis",
    "update_architecture_doc",
]
