"""Value-range lint (``BND*``), on the abstract interpreter.

The ``bound`` pass proves numeric safety properties against the
post-fixpoint interval environments of :mod:`repro.analysis.absint`:

- ``BND001`` — a scalar divisor whose inferred interval contains 0 on a
  reachable path (an unguarded ``len()``/count divide); a ``if n:`` /
  ``n != 0`` / ``max(1, n)`` guard removes the finding;
- ``BND002`` — a provably negative quantity assigned to (or passed as) a
  unit-suffixed sink — ``*_cycles``, ``*_j``, ``*_bytes`` and friends —
  where a negative value is physically meaningless;
- ``BND003`` — a fold/tile index whose inferred interval provably
  escapes a constant axis extent (``a[i]`` with ``i`` in ``[0, 16]``
  against a 16-row array);
- ``BND004`` — a dataclass constructor argument whose interval
  contradicts the class's own ``validate()`` contract
  (``require_positive``/``require_non_negative``/``require_in_range``/
  ``require_power_of_two`` from :mod:`repro.analysis.contracts`).

Like the ``shape`` pass, findings fire only on **provable** facts —
an unknown (⊤) interval never reports — and every finding carries the
inferred intervals in ``Finding.data`` for the JSON report.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .absint import AbsValue, FunctionAnalysis, Interpreter, interpreter_for
from .cfg import shallow_exprs
from .dataflow import iter_functions
from .findings import Finding
from .intervals import Interval
from .modgraph import ModuleIndex, ModuleInfo
from .units import parse_unit
from .visitor import ProjectChecker

__all__ = ["BoundChecker"]

#: unit dimensions for which a negative value is physically meaningless.
_NONNEG_DIMENSIONS = {
    "energy", "power", "time", "area", "frequency", "bytes", "bits",
    "cycles", "macs", "gate-equivalents",
}


class BoundChecker(ProjectChecker):
    """Prove cycle/energy/index arithmetic bounds at lint time (BND001-004)."""

    name = "bound"
    codes = {
        "BND001": "divisor interval contains zero on a reachable path",
        "BND002": "provably negative value reaches a unit-suffixed sink",
        "BND003": "index interval provably escapes the axis extent",
        "BND004": "constructor argument contradicts the validate() contract",
    }

    def check_project(self, index: ModuleIndex) -> Iterator[Finding]:
        interp = interpreter_for(index)
        for info in sorted(index.targets(), key=lambda m: m.name):
            for qualname, func in sorted(
                iter_functions(info.source.tree),
                key=lambda pair: pair[1].lineno,
            ):
                yield from self._check_function(interp, info, func)

    # -- per-function walk -----------------------------------------------

    def _check_function(
        self,
        interp: Interpreter,
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        if not _worth_analysing(func):
            return
        fa = interp.analysis(info, func)
        for stmt, env in fa.statements():
            for root in shallow_exprs(stmt):
                for node, node_env in fa.walk_refined(root, env):
                    if isinstance(node, ast.BinOp) and isinstance(
                        node.op, (ast.Div, ast.FloorDiv, ast.Mod)
                    ):
                        yield from self._check_divisor(
                            info, fa, node, node_env
                        )
                    elif isinstance(node, ast.Subscript) and isinstance(
                        node.ctx, ast.Load
                    ):
                        yield from self._check_index(info, fa, node, node_env)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_sinks(info, fa, stmt, env)
            if isinstance(
                stmt, (ast.Assign, ast.AnnAssign, ast.Return, ast.Expr)
            ):
                yield from self._check_contracts(interp, info, fa, stmt, env)

    # -- BND001 ----------------------------------------------------------

    def _check_divisor(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        node: ast.BinOp,
        env: dict,
    ) -> Iterator[Finding]:
        divisor = fa.eval(node.right, env)
        if divisor.is_array or divisor.tup is not None:
            return
        ival = divisor.ival
        if ival.is_top or ival.is_bottom or not ival.contains(0.0):
            return
        yield self.finding_at(
            info.source.path,
            node.lineno,
            node.col_offset,
            "BND001",
            f"divisor {_describe(node.right)} may be zero "
            f"(inferred {ival}); guard it or clamp with max(1, ...)",
            data={"divisor": str(ival), "expr": _describe(node.right)},
        )

    # -- BND002 ----------------------------------------------------------

    def _check_sinks(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        stmt: ast.stmt,
        env: dict,
    ) -> Iterator[Finding]:
        pairs: list[tuple[str, ast.expr]] = []
        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            for target in stmt.targets:
                name = _sink_name(target)
                if name is not None:
                    pairs.append((name, stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            name = _sink_name(stmt.target)
            if name is not None:
                pairs.append((name, stmt.value))
        for name, value_expr in pairs:
            unit = parse_unit(name)
            if unit is None or unit.dim not in _NONNEG_DIMENSIONS:
                continue
            value = fa.eval(value_expr, env)
            if value.is_array or value.ival.is_bottom:
                continue
            if value.ival.hi < 0.0:
                yield self.finding_at(
                    info.source.path,
                    stmt.lineno,
                    stmt.col_offset,
                    "BND002",
                    f"provably negative value (inferred {value.ival}) "
                    f"assigned to {unit.dim} sink '{name}'",
                    data={"sink": name, "value": str(value.ival)},
                )

    # -- BND003 ----------------------------------------------------------

    def _check_index(
        self,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        node: ast.Subscript,
        env: dict,
    ) -> Iterator[Finding]:
        base = fa.eval(node.value, env)
        if not base.is_array or base.shape.dims is None:
            return
        keys = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        dims = base.shape.dims
        for axis, key in enumerate(keys):
            if axis >= len(dims) or isinstance(key, ast.Slice):
                continue
            extent = dims[axis].value
            if extent is None:
                continue
            index = fa.eval(key, env).ival
            if (
                index.is_bottom
                or index.lo == float("-inf")
                or index.hi == float("inf")
            ):
                continue
            if index.lo < -extent or index.hi > extent - 1:
                yield self.finding_at(
                    info.source.path,
                    node.lineno,
                    node.col_offset,
                    "BND003",
                    f"index {_describe(key)} (inferred {index}) may fall "
                    f"outside axis {axis} of extent {extent}",
                    data={
                        "index": str(index),
                        "axis": axis,
                        "extent": extent,
                    },
                )

    # -- BND004 ----------------------------------------------------------

    def _check_contracts(
        self,
        interp: Interpreter,
        info: ModuleInfo,
        fa: FunctionAnalysis,
        stmt: ast.stmt,
        env: dict,
    ) -> Iterator[Finding]:
        value = getattr(stmt, "value", None)
        if not isinstance(value, ast.Call):
            return
        cls = interp.resolve_class(info, value)
        if cls is None:
            return
        fields = interp.ctor_fields(info, value, env, fa)
        if not fields:
            return
        for constraint in _contract_constraints(cls):
            arg = fields.get(constraint.field)
            if arg is None or arg.is_array:
                continue
            violation = constraint.violated_by(arg, fields)
            if violation is None:
                continue
            yield self.finding_at(
                info.source.path,
                value.lineno,
                value.col_offset,
                "BND004",
                f"{cls.name}.{constraint.field} (inferred {arg.ival}) "
                f"contradicts validate(): {violation}",
                data={
                    "field": constraint.field,
                    "constraint": violation,
                    "value": str(arg.ival),
                },
            )


# -- validate() contract extraction ----------------------------------------


class _Constraint:
    """One contract on a constructor field, parsed from ``validate()``."""

    def __init__(
        self,
        field: str,
        kind: str,
        lo: ast.expr | None = None,
        hi: ast.expr | None = None,
    ) -> None:
        self.field = field
        self.kind = kind  # positive | non_negative | power_of_two | in_range
        self.lo = lo
        self.hi = hi

    def violated_by(
        self, arg: AbsValue, fields: dict[str, AbsValue]
    ) -> str | None:
        """A human-readable violation when ``arg`` provably breaks this."""
        ival = arg.ival
        if ival.is_bottom or ival.is_top:
            return None
        if self.kind == "positive" and ival.hi <= 0.0:
            return "must be positive"
        if self.kind == "non_negative" and ival.hi < 0.0:
            return "must be non-negative"
        if self.kind == "power_of_two" and ival.is_const:
            value = int(ival.lo)
            if float(value) == ival.lo and (
                value <= 0 or value & (value - 1)
            ):
                return "must be a power of two"
        if self.kind == "in_range":
            bounds = Interval.range(
                _bound_value(self.lo, fields, default=float("-inf")),
                _bound_value(self.hi, fields, default=float("inf")),
            )
            if not bounds.is_bottom and not ival.intersects(bounds):
                return f"must lie in {bounds}"
        return None


def _bound_value(
    node: ast.expr | None, fields: dict[str, AbsValue], default: float
) -> float:
    """A contract bound: a constant, or another field's exact value."""
    if node is None:
        return default
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ):
        return float(node.value)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        field = fields.get(node.attr)
        if field is not None and field.ival.is_const:
            return field.ival.lo
    return default


def _contract_constraints(cls: ast.ClassDef) -> list[_Constraint]:
    validate = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "validate"
        ),
        None,
    )
    if validate is None:
        return []
    constraints: list[_Constraint] = []
    for node in ast.walk(validate):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Name
        ):
            continue
        name = node.func.id
        if name in ("require_positive", "require_non_negative"):
            kind = "positive" if name == "require_positive" else "non_negative"
            for keyword in node.keywords:
                field = _self_field(keyword.value) or keyword.arg
                if field is not None:
                    constraints.append(_Constraint(field, kind))
        elif name == "require_power_of_two":
            for keyword in node.keywords:
                field = _self_field(keyword.value) or keyword.arg
                if field is not None:
                    constraints.append(_Constraint(field, "power_of_two"))
        elif name == "require_in_range" and len(node.args) >= 5:
            field = _self_field(node.args[2])
            if field is not None:
                constraints.append(
                    _Constraint(
                        field, "in_range", lo=node.args[3], hi=node.args[4]
                    )
                )
    return constraints


def _self_field(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# -- misc ------------------------------------------------------------------


def _sink_name(target: ast.AST) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _worth_analysing(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Cheap gate: any division, subscript, unit sink or ctor call?"""
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Div, ast.FloorDiv, ast.Mod)
        ):
            return True
        if isinstance(node, ast.Subscript):
            return True
        if isinstance(node, (ast.Return, ast.Expr)) and isinstance(
            node.value, ast.Call
        ):
            return True
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call):
                return True
            for target in node.targets:
                name = _sink_name(target)
                if name is not None and parse_unit(name) is not None:
                    return True
    return False


def _describe(expr: ast.AST) -> str:
    text = ast.unparse(expr)
    return text if len(text) <= 40 else text[:37] + "..."
