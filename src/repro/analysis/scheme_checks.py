"""Scheme-identity lint (``SCHEME*``).

The scheme zoo is a plugin registry: everything a caller might want to
know about a :class:`~repro.schemes.ComputeScheme` — its MAC latency
law, PE cost, traffic behaviour, dataflow geometry, coding family — is
declared on its :class:`~repro.schemes.SchemeSpec` as a capability field
or provider hook.  A ``scheme is ComputeScheme.X`` branch outside the
registry silently breaks every scheme registered later: the new plugin
takes the wrong arm of a comparison its author never sees.

``SCHEME001`` flags any comparison (``is``/``==``/``in``/...) against a
``ComputeScheme`` member outside ``repro/schemes/``.  Dict literals
keyed by members stay legal — a table covering every scheme fails
loudly (``KeyError``) on a new registration instead of silently
misbehaving, and the independent differential oracles in
:mod:`repro.verify` are built exactly that way.  The oracle modules'
few deliberate identity branches carry explicit
``# repro-lint: ignore[scheme]`` acknowledgements.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from .findings import Finding
from .visitor import Checker, SourceFile

__all__ = ["SchemeChecker"]

#: Package path fragments exempt from this checker (the registry itself).
_SANCTIONED_FRAGMENTS = ("repro/schemes/",)


def _is_sanctioned(path: str) -> bool:
    posix = PurePath(path).as_posix()
    return any(fragment in posix for fragment in _SANCTIONED_FRAGMENTS)


class SchemeChecker(Checker):
    """Flag per-scheme identity branches outside the plugin registry."""

    name = "scheme"
    codes = {
        "SCHEME001": "comparison against a ComputeScheme member outside "
        "repro/schemes/ (dispatch on a capability field or spec hook)",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _is_sanctioned(source.path):
            return
        aliases = self._scheme_aliases(source.tree)
        if not aliases:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            member = self._compared_member(node, aliases)
            if member is not None:
                yield self.finding(
                    source,
                    node,
                    "SCHEME001",
                    f"branch on scheme identity ({member}) outside "
                    "repro/schemes/ breaks schemes registered later; "
                    "dispatch on a SchemeSpec capability field or "
                    "provider hook instead",
                )

    @staticmethod
    def _scheme_aliases(tree: ast.Module) -> set[str]:
        """Local names bound to the ``ComputeScheme`` enum by imports."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "ComputeScheme":
                        aliases.add(alias.asname or alias.name)
        return aliases

    @classmethod
    def _compared_member(
        cls, node: ast.Compare, aliases: set[str]
    ) -> str | None:
        """The first ``ComputeScheme.X`` reference on either side, if any."""
        for expr in (node.left, *node.comparators):
            member = cls._member_of(expr, aliases)
            if member is not None:
                return member
        return None

    @classmethod
    def _member_of(cls, expr: ast.expr, aliases: set[str]) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in aliases
        ):
            return f"{expr.value.id}.{expr.attr}"
        # Membership tests spell the members inside a container literal.
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                member = cls._member_of(element, aliases)
                if member is not None:
                    return member
        return None
