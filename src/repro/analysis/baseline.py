"""Findings baseline: land new checkers with known debt frozen.

A baseline file (``analysis-baseline.json``) records accepted findings
as ``(path, code, message)`` entries — deliberately **without** line
numbers, so unrelated edits above a known finding do not churn the file.
The runner then ratchets:

- a finding *not* in the baseline is **new** and fails the run;
- a baseline entry matching *no* current finding is **stale** and also
  fails the run — debt may only shrink, and shrinkage must be recorded
  by rewriting the file (``--write-baseline``).

Matching is multiset-aware: two identical findings need two entries.
The clean tree ships an **empty** baseline; the mechanism exists so a
future checker can land before its last true positive is fixed, not as
a place to park known bugs indefinitely.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline", "BaselineDelta", "BASELINE_SCHEMA_VERSION"]

BASELINE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineDelta:
    """Result of applying a baseline to the current findings."""

    #: findings not covered by the baseline — fail the run.
    new: tuple[Finding, ...]
    #: findings matched (and silenced) by baseline entries.
    accepted: tuple[Finding, ...]
    #: baseline entries matching nothing — stale debt, fail the run.
    stale: tuple[tuple[str, str, str], ...]

    @property
    def clean(self) -> bool:
        """True when nothing is new and nothing is stale."""
        return not self.new and not self.stale


class Baseline:
    """Multiset of accepted ``(path, code, message)`` finding keys."""

    def __init__(self, entries: list[tuple[str, str, str]] | None = None):
        self.entries: list[tuple[str, str, str]] = list(entries or [])

    @staticmethod
    def key(finding: Finding) -> tuple[str, str, str]:
        """Line-number-free identity of a finding."""
        return (finding.path, finding.code, finding.message)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad document."""
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path}: invalid JSON ({exc})") from exc
        if not isinstance(doc, dict) or "entries" not in doc:
            raise ValueError(f"baseline {path}: expected an 'entries' list")
        version = doc.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"baseline {path}: schema_version {version!r} is not "
                f"{BASELINE_SCHEMA_VERSION}; regenerate with --write-baseline"
            )
        entries = []
        for raw in doc["entries"]:
            try:
                entries.append((raw["path"], raw["code"], raw["message"]))
            except (TypeError, KeyError) as exc:
                raise ValueError(
                    f"baseline {path}: entry needs path/code/message"
                ) from exc
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        return cls(sorted(cls.key(f) for f in findings))

    def save(self, path: str | Path) -> None:
        """Write the baseline document (sorted, stable for diffs)."""
        doc = {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "entries": [
                {"path": p, "code": c, "message": m}
                for p, c, m in sorted(self.entries)
            ],
        }
        Path(path).write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )

    def apply(self, findings: list[Finding]) -> BaselineDelta:
        """Split current findings into new vs accepted; report stale debt."""
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry] = budget.get(entry, 0) + 1
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in sorted(findings):
            key = self.key(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        stale = tuple(
            key
            for key in sorted(budget)
            for _ in range(budget[key])
            if budget[key] > 0
        )
        return BaselineDelta(
            new=tuple(new), accepted=tuple(accepted), stale=stale
        )
