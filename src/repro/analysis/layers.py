"""The declared package-layer DAG of the reproduction.

This is the architecture contract the ``arch`` checker enforces: every
top-level unit under ``repro`` belongs to exactly one layer, and a
module may only import units in its own layer or below.  Layers are listed bottom-up — the same order the
generated diagram in ``docs/architecture.md`` and the ``--graph-dot``
clusters use.

Two sanctioned exemptions, both composition roots rather than layers:

- **entrypoint modules** (``__main__``/``cli``) wire whole pipelines
  together — ``repro.sim.cli`` legitimately reaches up into ``jobs`` for
  ``--cache-dir`` and into ``eval.report`` for table rendering;
- the **root facade** (``repro/__init__.py``) re-exports the public API
  from every layer.

A package not named here at all is ``ARCH003`` — new subsystems must
take an explicit position in the stack.
"""

from __future__ import annotations

import textwrap
from typing import Iterable

__all__ = [
    "ENTRYPOINT_BASENAMES",
    "LAYERS",
    "ROOT_PACKAGE",
    "declared_units",
    "is_exempt_module",
    "layer_index",
    "layer_name",
    "package_key",
    "render_layer_diagram",
]

#: Bottom-up: (layer name, top-level units, one-line description).
LAYERS: tuple[tuple[str, tuple[str, ...], str], ...] = (
    (
        "foundation",
        ("analysis", "unary"),
        "contract helpers + lint substrate; bit-true unary kernels "
        "(no repro imports besides each other)",
    ),
    (
        "schemes",
        ("schemes",),
        "pluggable compute-scheme registry: specs with capability flags, "
        "latency laws, dataflow geometries, and late-bound provider hooks",
    ),
    (
        "kernels",
        ("gemm", "hw"),
        "Table II GEMM parameterisation and tiling; gate-level cost models",
    ),
    (
        "config",
        ("core", "memory"),
        "ArrayConfig + functional array/ISA; SRAM/DRAM hierarchy models",
    ),
    (
        "models",
        ("fsu", "nn", "workloads"),
        "FSU baseline, numpy DNN stack, workload suites and platforms",
    ),
    (
        "sim",
        ("sim",),
        "fold schedule, traffic, contention engine, trace generation, stepped full-array co-simulation",
    ),
    (
        "orchestration",
        ("jobs",),
        "content-addressed result store, process-pool fan-out, job graphs",
    ),
    (
        "serving",
        ("serve",),
        "request-level serving: arrivals, queueing, batching, SLO metrics "
        "over the batched cost model",
    ),
    (
        "fleet",
        ("fleet",),
        "datacenter-scale serving: heterogeneous pools, seeded load "
        "balancing, autoscaling, sharded fleet simulation",
    ),
    (
        "apps",
        ("eval", "system", "verify"),
        "per-figure pipelines, system models, differential verification",
    ),
)

#: The distribution root; its ``__init__`` is the public facade.
ROOT_PACKAGE = "repro"

#: Module basenames exempt from the layering rule (composition roots).
ENTRYPOINT_BASENAMES = frozenset({"__main__", "cli"})

_LAYER_OF: dict[str, int] = {
    unit: i for i, (_, units, _) in enumerate(LAYERS) for unit in units
}
_LAYER_NAMES: tuple[str, ...] = tuple(name for name, _, _ in LAYERS)


def package_key(module: str) -> str | None:
    """Layer-spec unit of a dotted module name.

    ``repro.sim.engine`` -> ``sim``; the root module ``repro`` -> ``""``;
    anything outside the distribution (tests, examples, numpy) -> ``None``.
    """
    parts = module.split(".")
    if parts[0] != ROOT_PACKAGE:
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


def layer_index(unit: str) -> int | None:
    """Bottom-up layer position of a declared unit, else ``None``."""
    return _LAYER_OF.get(unit)


def layer_name(unit: str) -> str | None:
    """Layer name of a declared unit, else ``None``."""
    index = _LAYER_OF.get(unit)
    return _LAYER_NAMES[index] if index is not None else None


def is_exempt_module(module: str) -> bool:
    """True for composition roots: entrypoints and the root facade."""
    parts = module.split(".")
    if parts == [ROOT_PACKAGE]:
        return True
    return parts[-1] in ENTRYPOINT_BASENAMES


def declared_units() -> frozenset[str]:
    """Every unit named in :data:`LAYERS`."""
    return frozenset(_LAYER_OF)


def render_layer_diagram(layers: Iterable[tuple[str, tuple[str, ...], str]] = LAYERS) -> str:
    """ASCII layer diagram, top layer first (generated into the docs)."""
    rows = list(layers)[::-1]
    width = max(
        len(f"{name}:  " + "  ".join(f"repro.{u}" for u in units))
        for name, units, _ in rows
    )
    lines = ["+" + "-" * (width + 2) + "+"]
    for i, (name, units, description) in enumerate(rows):
        body = f"{name}:  " + "  ".join(f"repro.{u}" for u in units)
        lines.append(f"| {body.ljust(width)} |")
        for chunk in textwrap.wrap(description, width - 2):
            lines.append(f"|   {chunk.ljust(width - 2)} |")
        lines.append(
            "+" + "-" * (width + 2) + "+"
            if i == len(rows) - 1
            else "+" + "~" * (width + 2) + "+"
        )
    lines.append("  imports flow downward only; `cli`/`__main__` modules and")
    lines.append("  the `repro` facade are composition roots (exempt).")
    return "\n".join(lines)
