"""Compute schemes evaluated by the paper (Section IV-C2).

The enum is shared by the hardware cost models, the cycle simulator, the
functional array models and the evaluation pipelines; it lives at package
root so none of those subpackages depend on each other for it.
"""

from __future__ import annotations

import enum

__all__ = ["ComputeScheme", "scheme_mac_cycles"]


class ComputeScheme(enum.Enum):
    """One systolic-array computing scheme, keyed by Figure 11's labels."""

    BINARY_PARALLEL = "BP"
    BINARY_SERIAL = "BS"
    UGEMM_RATE = "UG"
    USYSTOLIC_RATE = "UR"
    USYSTOLIC_TEMPORAL = "UT"

    @property
    def is_unary(self) -> bool:
        return self in (
            ComputeScheme.UGEMM_RATE,
            ComputeScheme.USYSTOLIC_RATE,
            ComputeScheme.USYSTOLIC_TEMPORAL,
        )

    @property
    def supports_early_termination(self) -> bool:
        """Only rate coding can terminate early without accuracy collapse."""
        return self in (ComputeScheme.UGEMM_RATE, ComputeScheme.USYSTOLIC_RATE)


def scheme_mac_cycles(scheme: ComputeScheme, bits: int, ebt: int | None = None) -> int:
    """MAC cycle count of one PE (multiplication cycles + 1 accumulation).

    ``ebt`` is the effective bitwidth for early-terminable schemes; it
    defaults to the full data bitwidth.  Cycle formulas:

    - BP: 1 (single-cycle MAC, Figure 2);
    - BS: bits + 1 (one serialized multiplier input [31], [56]);
    - UR: 2**(ebt-1) + 1 (unipolar uMUL on sign-magnitude data);
    - UG: 2**ebt + 1 (bipolar uMUL needs double-length streams);
    - UT: 2**(bits-1) + 1 (temporal coding, no early termination).
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    if ebt is None:
        ebt = bits
    if not 2 <= ebt <= bits:
        raise ValueError(f"ebt must be in [2, {bits}], got {ebt}")
    if ebt != bits and not scheme.supports_early_termination:
        raise ValueError(f"{scheme.value} does not support early termination")
    if scheme is ComputeScheme.BINARY_PARALLEL:
        return 1
    if scheme is ComputeScheme.BINARY_SERIAL:
        return bits + 1
    if scheme is ComputeScheme.USYSTOLIC_RATE:
        return (1 << (ebt - 1)) + 1
    if scheme is ComputeScheme.UGEMM_RATE:
        return (1 << ebt) + 1
    return (1 << (bits - 1)) + 1
