"""Golden models the differential engine judges the simulator against.

Every oracle here is a deliberately *independent* derivation: the exact
functional outputs come from direct numpy arithmetic (no ``im2col``, no
tiling, no unary kernels), and the performance totals come from the
closed-form Table II algebra rather than from iterating the fold
schedule.  An implementation bug therefore cannot hide by being shared
between the system under test and its reference — the tubGEMM/tuGEMM
exact-binary-oracle discipline applied to this reproduction.
"""

from __future__ import annotations

import math

import numpy as np

from ..gemm.params import GemmParams
from ..memory.hierarchy import MemoryConfig
from ..schemes import ComputeScheme

__all__ = [
    "gemm_oracle",
    "im2col_oracle",
    "conv_oracle",
    "mac_latency_oracle",
    "compute_cycles_oracle",
    "traffic_oracle",
]


# ----------------------------------------------------------------------
# functional oracles (exact binary arithmetic)
# ----------------------------------------------------------------------
def gemm_oracle(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Exact integer matrix product, computed in object-free int64.

    The binary reference every unary approximation is measured against;
    inputs must be integer matrices small enough that products fit in 64
    bits (always true for the sign-magnitude operand ranges).
    """
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if lhs.ndim != 2 or rhs.ndim != 2 or lhs.shape[1] != rhs.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {lhs.shape} @ {rhs.shape}")
    return (lhs @ rhs).astype(np.float64)


def im2col_oracle(params: GemmParams, ifm: np.ndarray) -> np.ndarray:
    """The (OH*OW, WH*WW*IC) lowering, rebuilt by pure index arithmetic.

    Uses a single fancy-indexing gather (no python window loop), so it
    shares no control flow with :func:`repro.gemm.im2col.im2col` while
    pinning the same (wh, ww, ic) column ordering of Algorithm 1.
    """
    ifm = np.asarray(ifm)
    if ifm.shape != (params.ih, params.iw, params.ic):
        raise ValueError(
            f"IFM shape {ifm.shape} != ({params.ih}, {params.iw}, {params.ic})"
        )
    s = params.stride
    oh_idx = s * np.arange(params.oh)
    ow_idx = s * np.arange(params.ow)
    # rows[r] flattens window (oh, ow); columns iterate (wh, ww, ic).
    h = oh_idx[:, None, None, None, None] + np.arange(params.wh)[None, None, :, None, None]
    w = ow_idx[None, :, None, None, None] + np.arange(params.ww)[None, None, None, :, None]
    c = np.arange(params.ic)[None, None, None, None, :]
    gathered = ifm[h, w, c]  # (OH, OW, WH, WW, IC)
    return gathered.reshape(params.oh * params.ow, params.window)


def conv_oracle(
    params: GemmParams, weight: np.ndarray, ifm: np.ndarray
) -> np.ndarray:
    """Exact direct convolution: the (OH, OW, OC) golden OFM.

    ``weight`` has shape (OC, WH, WW, IC); the result is the exact
    integer-product OFM the binary array must reproduce bit for bit and
    the unary schemes approximate.  Computed by per-position tensor
    contraction — no lowering, no tiling.
    """
    weight = np.asarray(weight, dtype=np.int64)
    ifm = np.asarray(ifm, dtype=np.int64)
    if weight.shape != (params.oc, params.wh, params.ww, params.ic):
        raise ValueError(f"weight shape {weight.shape} mismatches {params.name!r}")
    if ifm.shape != (params.ih, params.iw, params.ic):
        raise ValueError(f"IFM shape {ifm.shape} mismatches {params.name!r}")
    s = params.stride
    out = np.empty((params.oh, params.ow, params.oc), dtype=np.int64)
    for oh in range(params.oh):
        for ow in range(params.ow):
            window = ifm[oh * s : oh * s + params.wh, ow * s : ow * s + params.ww, :]
            out[oh, ow, :] = np.tensordot(weight, window, axes=([1, 2, 3], [0, 1, 2]))
    return out.astype(np.float64)


# ----------------------------------------------------------------------
# timing oracles (closed form, Section III)
# ----------------------------------------------------------------------
def mac_latency_oracle(
    scheme: ComputeScheme,
    bits: int,
    ebt: int | None = None,
    act_frac: float | None = None,
) -> int:
    """Closed-form PE MAC latency per scheme, written out independently.

    The crawl latency of Section III-A/C: a rate-coded uSystolic MAC
    takes ``2**(n-1) + 1`` cycles at effective bitwidth n (the +1 is the
    binary fold of the partial sum), uGEMM's bipolar streams double the
    length, temporal coding always runs the full ``2**(N-1)`` stream.
    The zoo: tuGEMM's counters run the same full temporal stream, DiP
    keeps the single-cycle binary MAC, and tubGEMM streams the expected
    activation magnitude (``act_frac`` of full scale, rounded half-up).
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    n = bits if ebt is None else ebt
    if not 2 <= n <= bits:
        raise ValueError(f"ebt must be in [2, {bits}], got {n}")
    # The oracle must re-derive latency without the registry's law, so
    # this one identity branch is a deliberate SCHEME001 exception.
    if (
        scheme is ComputeScheme.TUBGEMM_TEMPORAL  # repro-lint: ignore[scheme]
        and act_frac is not None
    ):
        # Independent rounding path (floor of x + 1/2, not banker's).
        return math.floor(act_frac * 2 ** (bits - 1) + 0.5) + 1
    return {
        ComputeScheme.BINARY_PARALLEL: 1,
        ComputeScheme.BINARY_SERIAL: bits + 1,
        ComputeScheme.USYSTOLIC_RATE: 2 ** (n - 1) + 1,
        ComputeScheme.USYSTOLIC_TEMPORAL: 2 ** (bits - 1) + 1,
        ComputeScheme.UGEMM_RATE: 2**n + 1,
        ComputeScheme.TUGEMM_TEMPORAL: 2 ** (bits - 1) + 1,
        ComputeScheme.TUBGEMM_TEMPORAL: 2 ** (bits - 1) + 1,
        ComputeScheme.DIP_PARALLEL: 1,
    }[scheme]


def compute_cycles_oracle(
    params: GemmParams,
    rows: int,
    cols: int,
    mac_cycles: int,
    skewed: bool = True,
) -> int:
    """Analytical contention-free layer cycles (no fold iteration).

    With K = WH*WW*IC, V = OH*OW, ``kf = ceil(K/rows)`` reduction folds
    and ``cf = ceil(OC/cols)`` column folds, the per-fold preloads sum in
    closed form because edge-tile rows sum to exactly K across reduction
    folds (and edge-tile columns to OC across column folds)::

        sum preloads = cf*K + kf*OC - kf*cf
        sum streams  = kf*cf * V * mac_cycles
        last drain   = (K - (kf-1)*rows) + (OC - (cf-1)*cols) - 2

    which must equal :func:`repro.sim.dataflow.schedule_layer` exactly.
    ``skewed=False`` is the diagonal-input (DiP) variant: no column
    stagger in the preloads and no drain at all::

        sum preloads = cf*K
        last drain   = 0
    """
    if rows < 1 or cols < 1 or mac_cycles < 1:
        raise ValueError("rows, cols and mac_cycles must be positive")
    k = params.window
    oc = params.oc
    v = params.oh * params.ow
    kf = math.ceil(k / rows)
    cf = math.ceil(oc / cols)
    streams = kf * cf * v * mac_cycles
    if not skewed:
        return cf * k + streams
    preloads = cf * k + kf * oc - kf * cf
    last_drain = (k - (kf - 1) * rows) + (oc - (cf - 1) * cols) - 2
    return preloads + streams + last_drain


# ----------------------------------------------------------------------
# traffic oracle (Table II byte algebra)
# ----------------------------------------------------------------------
def traffic_oracle(
    params: GemmParams, rows: int, cols: int, bits: int, memory: MemoryConfig
) -> dict[str, int]:
    """Analytical per-variable byte totals at each memory level.

    Returns a flat ``{"<variable>.<level>_<op>": bytes}`` dict derived
    from Table II parameters only: the im2col stream is re-read once per
    column fold, weights stream exactly once, the OFM is written once
    per reduction fold with ``kf - 1`` partial-sum re-reads, and an IFM
    SRAM caps DRAM reads at the smaller of the footprint-per-fold and
    the raw demand stream.
    """
    elem = (bits + 7) // 8
    k = params.window
    v = params.oh * params.ow
    kf = math.ceil(k / rows)
    cf = math.ceil(params.oc / cols)
    outputs = v * params.oc

    ifm_stream = v * k * cf * elem
    weight_stream = k * params.oc * elem
    ofm_write = outputs * kf * elem
    psum_read = outputs * (kf - 1) * elem
    ifm_footprint = params.ih * params.iw * params.ic * elem

    totals = {
        f"{variable}.{level}_{op}": 0
        for variable in ("ifm", "weight", "ofm")
        for level in ("sram", "dram")
        for op in ("read", "write")
    }
    if memory.has_sram:
        if ifm_footprint <= memory.usable_sram_bytes():
            ifm_dram = min(ifm_footprint, ifm_stream)
        else:
            ifm_dram = min(ifm_footprint * cf, ifm_stream)
        totals["ifm.sram_read"] = ifm_stream
        totals["ifm.sram_write"] = ifm_dram
        totals["ifm.dram_read"] = ifm_dram
        totals["weight.sram_read"] = weight_stream
        totals["weight.sram_write"] = weight_stream
        totals["weight.dram_read"] = weight_stream
        totals["ofm.sram_read"] = psum_read
        totals["ofm.sram_write"] = ofm_write
        totals["ofm.dram_write"] = outputs * elem
    else:
        totals["ifm.dram_read"] = ifm_stream
        totals["weight.dram_read"] = weight_stream
        totals["ofm.dram_read"] = psum_read
        totals["ofm.dram_write"] = ofm_write
    return totals
