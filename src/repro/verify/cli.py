"""``python -m repro.verify {diff,fuzz,replay}``: the verification CLI.

- ``diff`` — run the curated deterministic case grid (plus ``--budget``
  seeded extras) and report any oracle disagreement;
- ``fuzz`` — the seeded campaign: ``--seed``/``--budget`` cases across
  ``--jobs`` workers, shrunk counterexamples written to ``--out``
  (default ``verify-failures/``), optionally incremental via
  ``--cache-dir``;
- ``replay`` — re-run previously written counterexample files (or every
  ``*.json`` in a directory), the forever-regression entry the
  ``tests/verify/`` suite wraps.

Exit codes follow ``repro.analysis``: 0 clean, 1 mismatches, 2 errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

import numpy as np

from ..jobs.pool import run_tasks
from ..jobs.store import ResultStore
from .diff import DiffReport, default_cases, run_case
from .fuzz import execute_case, generate_case, load_counterexample, run_fuzz

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.verify`` argument parser (exposed for docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential oracles for the uSystolic reproduction: scalar "
            "vs vectorised kernels, engine vs analytical model."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser("diff", help="run the deterministic differential grid")
    diff.add_argument("--seed", type=int, default=0, help="seed for extra cases")
    diff.add_argument(
        "--budget", type=int, default=0, help="extra seeded cases beyond the grid"
    )
    diff.add_argument("--jobs", type=int, default=1, help="worker processes")
    diff.add_argument("--json", action="store_true", help="machine-readable report")

    fuzz = sub.add_parser("fuzz", help="seeded fuzz campaign with shrinking")
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument("--budget", type=int, default=200, help="cases to draw")
    fuzz.add_argument("--jobs", type=int, default=1, help="worker processes")
    fuzz.add_argument(
        "--engine",
        choices=("all", "kernel", "engine", "functional", "array"),
        default="all",
        help="pin the fuzzed diff surface (default: all, weighted mix)",
    )
    fuzz.add_argument(
        "--out",
        default="verify-failures",
        help="directory for shrunk counterexamples (default: verify-failures)",
    )
    fuzz.add_argument(
        "--cache-dir",
        default=None,
        help="repro.jobs result store: skip cases already recorded as passing",
    )
    fuzz.add_argument("--json", action="store_true", help="machine-readable report")

    replay = sub.add_parser("replay", help="re-run checked-in counterexamples")
    replay.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="counterexample files or directories (default: verify-failures)",
    )
    replay.add_argument("--json", action="store_true", help="machine-readable report")
    return parser


def _render_reports(reports: list[DiffReport], log: TextIO) -> int:
    failures = [report for report in reports if not report.ok]
    for report in failures:
        fields = report.case.nondefault_fields() or {"<all defaults>": True}
        print(f"FAIL {report.case.kind} case {fields}", file=log)
        for mismatch in report.mismatches:
            print(f"  {mismatch.render()}", file=log)
    return 1 if failures else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    cases = default_cases()
    if args.budget > 0:
        rng = np.random.default_rng(args.seed)
        cases.extend(generate_case(rng) for _ in range(args.budget))
    reports = run_tasks(execute_case, cases, workers=args.jobs)
    checks = sum(report.checks for report in reports)
    status = _render_reports(reports, sys.stderr)
    if args.json:
        print(
            json.dumps(
                {
                    "cases": len(cases),
                    "checks": checks,
                    "failures": [r.to_json() for r in reports if not r.ok],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"verify diff: {len(cases)} cases, {checks} checks, "
            f"{sum(not r.ok for r in reports)} failing"
        )
    return status


def _cmd_fuzz(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    result = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        jobs=args.jobs,
        out_dir=args.out,
        store=store,
        engine=None if args.engine == "all" else args.engine,
    )
    status = _render_reports(list(result.failures), sys.stderr)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(
            f"verify fuzz: seed={result.seed} budget={result.budget} "
            f"checks={result.checks} cached={result.cached} "
            f"failures={len(result.failures)}"
        )
        for path in result.written:
            print(f"counterexample written: {path}")
    return status


def _replay_paths(raw: list[str] | None) -> list[Path]:
    roots = [Path(p) for p in raw] if raw else [Path("verify-failures")]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.glob("*.json")))
        elif root.is_file():
            files.append(root)
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
    return files


def _cmd_replay(args: argparse.Namespace) -> int:
    files = _replay_paths(args.paths)
    reports = []
    for path in files:
        case = load_counterexample(path)
        reports.append(run_case(case))
    status = _render_reports(reports, sys.stderr)
    if args.json:
        print(
            json.dumps(
                {
                    "replayed": [str(path) for path in files],
                    "failures": [r.to_json() for r in reports if not r.ok],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"verify replay: {len(files)} counterexamples, "
            f"{sum(not r.ok for r in reports)} still failing"
        )
    return status


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry: 0 clean, 1 mismatches, 2 usage/path errors."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        return _cmd_replay(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.verify: error: {exc}", file=sys.stderr)
        return 2
