"""Differential-oracle verification of the uSystolic simulator stack.

The repo's central correctness claim — the vectorised row kernel, the
scalar HUB MAC, the functional array and the analytic performance model
all describe *one* machine — is made executable here, the way tubGEMM
and tuGEMM validate their unary GEMM units against exact binary oracles:

- :mod:`repro.verify.oracles` — pure-numpy golden models (exact GEMM /
  im2col / convolution outputs, the closed-form ``2**(n-1) + 1`` crawl
  latency, analytical DRAM/SRAM traffic totals from Table II parameters)
  that share *no code* with the implementations they judge;
- :mod:`repro.verify.diff` — the differential engine: one
  :class:`~repro.verify.diff.VerifyCase` runs through both the scalar
  and vectorised unary kernels, through ``sim.engine.simulate_layer``
  versus the analytical model, and through the stepped full-array
  co-simulator (:mod:`repro.sim.arraysim`) as a third oracle — analytic
  schedule ≡ event trace ≡ stepped array — reporting structured
  :class:`~repro.verify.diff.Mismatch` records (check, expected, got,
  delta) that name the first divergent (cycle, pe, fold) instead of a
  bare assert;
- :mod:`repro.verify.fuzz` — a seeded random generator over the
  ``ArrayConfig`` / ``GemmParams`` / coding / bit-width space, fanned
  out through :mod:`repro.jobs`, with greedy shrinking of failing cases
  to minimal JSON counterexamples under ``verify-failures/``;
- ``python -m repro.verify {diff,fuzz,replay}`` — the CLI, and
  ``tests/verify/`` replays every checked-in counterexample forever.
"""

from __future__ import annotations

from .diff import DiffReport, Mismatch, VerifyCase, run_case
from .fuzz import FuzzResult, generate_case, run_fuzz, shrink_case
from .oracles import (
    compute_cycles_oracle,
    conv_oracle,
    gemm_oracle,
    im2col_oracle,
    mac_latency_oracle,
    traffic_oracle,
)

__all__ = [
    "DiffReport",
    "FuzzResult",
    "Mismatch",
    "VerifyCase",
    "compute_cycles_oracle",
    "conv_oracle",
    "gemm_oracle",
    "generate_case",
    "im2col_oracle",
    "mac_latency_oracle",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "traffic_oracle",
]
