"""Seeded fuzzing over the config space, with counterexample shrinking.

``run_fuzz(seed, budget)`` draws ``budget`` cases from one
``np.random.default_rng(seed)`` stream — the draw sequence is part of
the repo's determinism contract, so ``--seed 0 --budget 200`` names the
exact same cases on every machine — fans them out through
:func:`repro.jobs.pool.run_tasks`, and greedily shrinks every failing
case toward the all-defaults minimal case before writing it to
``verify-failures/`` as a JSON document that ``replay`` (and the
``tests/verify/`` suite) can re-run forever.

Shrinking is the classic greedy pass: for each field in a fixed order,
try the default value first, then bisect numeric fields toward it,
keeping any candidate that still fails; iterate to a fixed point.  The
result is a counterexample whose JSON carries only the few fields that
matter (the acceptance bar: an injected off-by-one in the row kernel
shrinks to <= 3 fields).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from ..jobs.keys import fingerprint
from ..jobs.pool import run_tasks
from ..jobs.store import ResultStore
from .diff import DiffReport, VerifyCase, run_case

__all__ = [
    "generate_case",
    "execute_case",
    "shrink_case",
    "run_fuzz",
    "FuzzResult",
    "write_counterexample",
    "load_counterexample",
    "case_key",
]

#: On-disk schema of one counterexample file.
COUNTEREXAMPLE_SCHEMA = 1

#: Fields the shrinker never touches (the case kind *is* the surface).
_FROZEN_FIELDS = ("kind",)

#: Draw weights of the four surfaces: kernels are cheapest and the
#: highest-value diff; functional and stepped-array cases are the most
#: expensive, and the array surface subsumes much of functional's.
_KIND_WEIGHTS = {"kernel": 0.40, "engine": 0.30, "functional": 0.15, "array": 0.15}


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _draw_kernel(rng: np.random.Generator) -> VerifyCase:
    bits = int(rng.integers(2, 9))
    limit = (1 << (bits - 1)) - 1
    temporal = bits >= 3 and rng.random() < 0.25
    if temporal:
        coding, ebt = "temporal", None
    else:
        coding = "rate"
        ebt = None if rng.random() < 0.4 else int(rng.integers(2, bits + 1))
    width = int(rng.integers(1, 13))
    return VerifyCase(
        kind="kernel",
        bits=bits,
        ebt=ebt,
        coding=coding,
        ifm=int(rng.integers(-limit, limit + 1)),
        weights=tuple(int(w) for w in rng.integers(-limit, limit + 1, size=width)),
    )


def _draw_gemm(rng: np.random.Generator, small: bool) -> dict[str, int]:
    ih = int(rng.integers(2, 5 if small else 13))
    iw = int(rng.integers(2, 5 if small else 13))
    wh = int(rng.integers(1, min(3 if small else 4, ih) + 1))
    ww = int(rng.integers(1, min(3 if small else 4, iw) + 1))
    return {
        "ih": ih,
        "iw": iw,
        "ic": int(rng.integers(1, 3 if small else 9)),
        "wh": wh,
        "ww": ww,
        "oc": int(rng.integers(1, 4 if small else 25)),
        "stride": int(rng.integers(1, 3)),
    }


def _draw_engine(rng: np.random.Generator) -> VerifyCase:
    scheme = str(rng.choice(["BP", "BS", "UR", "UT", "UG", "TU", "TB", "DP"]))
    bits = int(rng.choice([4, 8, 16])) if scheme in ("BP", "BS", "DP") else 8
    ebt = int(rng.integers(2, bits + 1)) if scheme == "UR" and rng.random() < 0.7 else None
    act_pct = (
        int(rng.integers(0, 101))
        if scheme == "TB" and rng.random() < 0.7
        else None
    )
    return VerifyCase(
        kind="engine",
        bits=bits,
        ebt=ebt,
        scheme=scheme,
        act_pct=act_pct,
        rows=int(rng.integers(1, 9)),
        cols=int(rng.integers(1, 9)),
        sram_kib=None if rng.random() < 0.5 else int(rng.choice([1, 8, 64, 512])),
        **_draw_gemm(rng, small=False),
    )


def _draw_functional(rng: np.random.Generator) -> VerifyCase:
    scheme = str(rng.choice(["BP", "UR", "UT", "TU", "TB", "DP"]))
    if scheme in ("BP", "DP"):
        bits, ebt = 8, None
    elif scheme == "UR":
        bits = int(rng.integers(3, 6))
        ebt = None if rng.random() < 0.5 else int(rng.integers(2, bits + 1))
    else:
        bits, ebt = int(rng.integers(3, 5)), None
    act_pct = (
        int(rng.integers(0, 101))
        if scheme == "TB" and rng.random() < 0.5
        else None
    )
    return VerifyCase(
        kind="functional",
        bits=bits,
        ebt=ebt,
        scheme=scheme,
        act_pct=act_pct,
        rows=int(rng.integers(1, 5)),
        cols=int(rng.integers(1, 5)),
        seed=int(rng.integers(0, 2**31)),
        **_draw_gemm(rng, small=True),
    )


def _draw_array(rng: np.random.Generator) -> VerifyCase:
    scheme = str(rng.choice(["BP", "UR", "UT", "TU", "TB", "DP"]))
    if scheme in ("BP", "DP"):
        bits, ebt = 8, None
    elif scheme == "UR":
        bits = int(rng.integers(3, 6))
        ebt = None if rng.random() < 0.5 else int(rng.integers(2, bits + 1))
    else:
        bits, ebt = int(rng.integers(3, 5)), None
    act_pct = (
        int(rng.integers(0, 101))
        if scheme == "TB" and rng.random() < 0.5
        else None
    )
    return VerifyCase(
        kind="array",
        bits=bits,
        ebt=ebt,
        scheme=scheme,
        act_pct=act_pct,
        rows=int(rng.integers(1, 6)),
        cols=int(rng.integers(1, 6)),
        seed=int(rng.integers(0, 2**31)),
        **_draw_gemm(rng, small=True),
    )


_DRAWERS = {
    "kernel": _draw_kernel,
    "engine": _draw_engine,
    "functional": _draw_functional,
    "array": _draw_array,
}


def generate_case(
    rng: np.random.Generator, kind: str | None = None
) -> VerifyCase:
    """Draw one valid case; the rng stream fully determines it.

    ``kind`` pins the surface (the ``--engine`` fuzz target); ``None``
    draws it from the weighted distribution.
    """
    if kind is None:
        kind = str(rng.choice(list(_KIND_WEIGHTS), p=list(_KIND_WEIGHTS.values())))
    if kind not in _DRAWERS:
        raise ValueError(f"unknown case kind {kind!r}; expected one of {sorted(_DRAWERS)}")
    return _DRAWERS[kind](rng).validated()


# ----------------------------------------------------------------------
# execution (module-level, picklable for the jobs fan-out)
# ----------------------------------------------------------------------
def execute_case(case: VerifyCase) -> DiffReport:
    """Run one case; the worker function :func:`run_fuzz` fans out."""
    return run_case(case)


def case_key(case: VerifyCase) -> str:
    """Content-addressed key of one verify case (``repro.jobs`` schema)."""
    return fingerprint("verify_case", case=case)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _int_candidates(value: int, default: int) -> list[int]:
    """Default first, then bisection steps from ``value`` toward it."""
    candidates = [default]
    lo, hi = sorted((default, value))
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid not in (value, default):
            candidates.append(mid)
        if value > default:
            hi = mid
        else:
            lo = mid
    return candidates


def _field_candidates(case: VerifyCase, name: str, default: Any) -> Iterable[Any]:
    value = getattr(case, name)
    if value == default:
        return []
    if name == "weights":
        out: list[tuple[int, ...]] = [default]
        if len(value) > 1:
            out.append(value[:1])
            out.append(value[: len(value) // 2])
        out.append(tuple(0 for _ in value))
        for index, w in enumerate(value):
            if w != 0:
                out.append(value[:index] + (0,) + value[index + 1 :])
                out.append(value[:index] + (w // 2,) + value[index + 1 :])
        return out
    if isinstance(value, bool) or value is None or default is None:
        return [default]
    if isinstance(value, int) and isinstance(default, int):
        return _int_candidates(value, default)
    return [default]


def shrink_case(
    case: VerifyCase,
    fails: Callable[[VerifyCase], bool] | None = None,
    max_rounds: int = 8,
) -> VerifyCase:
    """Greedily minimise a failing case while it keeps failing.

    ``fails`` defaults to "``run_case`` reports a mismatch".  Candidate
    values that make the case invalid are simply skipped, so shrinking
    can never leave the legal config space.
    """
    if fails is None:
        fails = lambda c: not run_case(c).ok  # noqa: E731 - default predicate
    defaults = {f.name: f.default for f in dataclasses.fields(VerifyCase)}
    for _ in range(max_rounds):
        changed = False
        for name, default in defaults.items():
            if name in _FROZEN_FIELDS:
                continue
            for candidate in _field_candidates(case, name, default):
                trial = dataclasses.replace(case, **{name: candidate})
                try:
                    trial.validated()
                except ValueError:
                    continue
                if fails(trial):
                    case = trial
                    changed = True
                    break
        if not changed:
            break
    return case


# ----------------------------------------------------------------------
# counterexample files
# ----------------------------------------------------------------------
def write_counterexample(
    directory: str | Path, report: DiffReport, seed: int, index: int
) -> Path:
    """Persist one shrunk failure as ``<dir>/<case-key-prefix>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": COUNTEREXAMPLE_SCHEMA,
        "seed": seed,
        "index": index,
        **report.to_json(),
    }
    path = directory / f"{case_key(report.case)[:12]}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True), encoding="utf-8")
    return path


def load_counterexample(path: str | Path) -> VerifyCase:
    """Parse one counterexample file back into its (validated) case."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "case" not in document:
        raise ValueError(f"{path}: not a counterexample document")
    return VerifyCase.from_json(document["case"])


# ----------------------------------------------------------------------
# the fuzz driver
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzz run."""

    seed: int
    budget: int
    checks: int
    failures: tuple[DiffReport, ...]
    """Shrunk reports, one per failing drawn case."""
    written: tuple[str, ...]
    cached: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict[str, Any]:
        """Machine-readable summary for the CLI's ``--json`` mode."""
        return {
            "seed": self.seed,
            "budget": self.budget,
            "checks": self.checks,
            "cached": self.cached,
            "failures": [report.to_json() for report in self.failures],
            "written": list(self.written),
        }


def run_fuzz(
    seed: int,
    budget: int,
    jobs: int = 1,
    out_dir: str | Path | None = "verify-failures",
    store: ResultStore | None = None,
    engine: str | None = None,
) -> FuzzResult:
    """Draw, run, shrink and persist: the whole fuzz campaign.

    A :class:`~repro.jobs.store.ResultStore` makes re-runs incremental:
    cases whose content key is already recorded as passing are skipped
    (failures are never cached — they must shrink and re-reproduce).
    ``engine`` pins every drawn case to one surface (``--engine array``
    fuzzes only the stepped-array oracle); ``None`` mixes all four.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    rng = np.random.default_rng(seed)
    cases = [generate_case(rng, kind=engine) for _ in range(budget)]

    pending: list[tuple[int, VerifyCase]] = []
    cached = 0
    if store is not None:
        for index, case in enumerate(cases):
            if store.get(case_key(case), "verify_case") == {"ok": True}:
                cached += 1
            else:
                pending.append((index, case))
    else:
        pending = list(enumerate(cases))

    reports = run_tasks(execute_case, [case for _, case in pending], workers=jobs)
    checks = sum(report.checks for report in reports)
    failures: list[DiffReport] = []
    written: list[str] = []
    for (index, case), report in zip(pending, reports):
        if report.ok:
            if store is not None:
                store.put(case_key(case), "verify_case", {"ok": True})
            continue
        shrunk = shrink_case(case)
        shrunk_report = run_case(shrunk)
        if shrunk_report.ok:  # pragma: no cover - flaky failure guard
            shrunk_report = report
        failures.append(shrunk_report)
        if out_dir is not None:
            written.append(str(write_counterexample(out_dir, shrunk_report, seed, index)))
    return FuzzResult(
        seed=seed,
        budget=budget,
        checks=checks,
        failures=tuple(failures),
        written=tuple(written),
        cached=cached,
    )
