"""The differential engine: one case, every redundant description of it.

A :class:`VerifyCase` is a point in the ``ArrayConfig`` x ``GemmParams``
x coding x bit-width space, flattened into one frozen dataclass whose
*defaults are the minimal case* — counterexample JSON stores only the
fields that differ from those defaults, which is what the fuzzer's
greedy shrinker minimises.

Four case kinds, four diff surfaces:

- ``kernel`` — the scalar :class:`~repro.unary.mac.HubMac` versus the
  vectorised :func:`~repro.unary.vectorized.hub_mac_row` (scalar
  reference), element by element at integer product scale, plus the
  closed-form ``2**(n-1) + 1`` crawl-latency oracle;
- ``engine`` — :func:`repro.sim.engine.simulate_layer`, the fold
  schedule, the traffic profiler and the event trace versus the
  analytical oracles of :mod:`repro.verify.oracles`;
- ``functional`` — the whole :class:`~repro.core.array.UsystolicArray`
  versus an independent scalar-MAC reference (and, for binary schemes,
  the exact convolution oracle);
- ``array`` — the third oracle: the stepped full-array co-simulator
  (:func:`repro.sim.arraysim.simulate_array`) versus the analytic
  schedule, the event trace and the functional array — analytic ≡ trace
  ≡ stepped, with mismatches naming the first divergent (cycle, pe,
  fold), plus the cycle-vs-wave granularity cross-check.

Every disagreement becomes a structured :class:`Mismatch` (check,
expected, got, delta) so failures are machine-shrinkable and diffable
rather than a bare assert message.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from ..core.array import UsystolicArray
from ..core.config import ArrayConfig
from ..gemm.im2col import im2col as _im2col_impl
from ..gemm.params import GemmParams
from ..gemm.tiling import tile_gemm
from ..memory.hierarchy import MemoryConfig
from ..schemes import ComputeScheme
from ..sim import arraysim, tracegen
from ..sim.dataflow import schedule_layer, schedule_tile
from ..sim.engine import simulate_layer
from ..sim.traffic import profile_traffic
from ..unary import vectorized
from ..unary.bitstream import Coding
from ..unary.mac import HubMac
from .oracles import (
    compute_cycles_oracle,
    conv_oracle,
    im2col_oracle,
    mac_latency_oracle,
    traffic_oracle,
)

__all__ = ["VerifyCase", "Mismatch", "DiffReport", "run_case", "default_cases"]

KINDS = ("kernel", "engine", "functional", "array")

_SCHEMES = {s.value: s for s in ComputeScheme}

#: Schemes the functional array diff supports (BS shares BP's exact path;
#: the exact zoo members TU/TB/DP diff against the convolution oracle).
_FUNCTIONAL_SCHEMES = ("BP", "UR", "UT", "TU", "TB", "DP")

#: Cap on reported per-element functional mismatches (the report stays
#: readable; the mismatch *count* is still exact via ``checks``).
_MAX_ELEMENT_MISMATCHES = 8

#: Analytic-cycle budget under which the array diff also runs the exact
#: per-clock-cycle stepper and holds the wave stepper to it; above it
#: only the O(vectors) wave granularity runs (still diffed against the
#: schedule, trace and functional array).
_CYCLE_STEP_GUARD = 50_000


@dataclasses.dataclass(frozen=True)
class VerifyCase:
    """One differential test point; defaults form the minimal case."""

    kind: str = "kernel"
    # kernel surface -------------------------------------------------
    bits: int = 4
    ebt: int | None = None
    coding: str = "rate"
    ifm: int = 0
    weights: tuple[int, ...] = (0,)
    # engine / functional surface ------------------------------------
    ih: int = 3
    iw: int = 3
    ic: int = 1
    wh: int = 1
    ww: int = 1
    oc: int = 1
    stride: int = 1
    rows: int = 2
    cols: int = 2
    scheme: str = "UR"
    sram_kib: int | None = None
    seed: int = 0
    act_pct: int | None = None
    """Activation magnitude as a percent (tubGEMM's expected-latency knob)."""

    # ------------------------------------------------------------------
    def validated(self) -> "VerifyCase":
        """Raise ``ValueError`` on any field outside the legal space."""
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if self.ebt is not None and not 2 <= self.ebt <= self.bits:
            raise ValueError(f"ebt must be in [2, {self.bits}], got {self.ebt}")
        if self.coding not in ("rate", "temporal"):
            raise ValueError(f"coding must be rate|temporal, got {self.coding!r}")
        if self.coding == "temporal" and self.ebt is not None:
            raise ValueError("temporal coding admits no early termination")
        limit = 1 << (self.bits - 1)
        if abs(self.ifm) >= limit:
            raise ValueError(f"ifm {self.ifm} outside {self.bits}-bit range")
        if not self.weights or len(self.weights) > 64:
            raise ValueError("weights must hold 1..64 values")
        if any(abs(w) >= limit for w in self.weights):
            raise ValueError(f"weights outside {self.bits}-bit range")
        if self.scheme not in _SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.kind == "functional" and self.scheme not in _FUNCTIONAL_SCHEMES:
            raise ValueError(
                f"functional cases support {_FUNCTIONAL_SCHEMES}, got {self.scheme}"
            )
        if self.ebt is not None and not _SCHEMES[self.scheme].supports_early_termination:
            if self.kind != "kernel":
                raise ValueError(f"{self.scheme} does not support early termination")
        if self.act_pct is not None:
            if not _SCHEMES[self.scheme].value_dependent_latency:
                raise ValueError(
                    f"{self.scheme} has no value-dependent latency (act_pct)"
                )
            if not 0 <= self.act_pct <= 100:
                raise ValueError(f"act_pct must be in [0, 100], got {self.act_pct}")
        if self.sram_kib is not None and self.sram_kib < 1:
            raise ValueError("sram_kib must be positive or null")
        if self.kind != "kernel":
            # GemmParams/ArrayConfig contracts fire eagerly and loudly.
            self.gemm_params()
            self.array_config()
        return self

    # ------------------------------------------------------------------
    # derived configuration objects
    # ------------------------------------------------------------------
    def gemm_params(self) -> GemmParams:
        """The Table II description of this case's GEMM."""
        return GemmParams(
            name=f"verify-{self.kind}",
            ih=self.ih,
            iw=self.iw,
            ic=self.ic,
            wh=self.wh,
            ww=self.ww,
            oc=self.oc,
            stride=self.stride,
        )

    def array_config(self) -> ArrayConfig:
        """The systolic-array configuration of this case."""
        return ArrayConfig(
            rows=self.rows,
            cols=self.cols,
            scheme=_SCHEMES[self.scheme],
            bits=self.bits,
            ebt=self.ebt,
            act_frac=None if self.act_pct is None else self.act_pct / 100,
        )

    def memory_config(self) -> MemoryConfig:
        """The memory hierarchy (``sram_kib`` of ``None`` = SRAM-less)."""
        size = None if self.sram_kib is None else self.sram_kib * 1024
        return MemoryConfig(sram_bytes_per_variable=size)

    # ------------------------------------------------------------------
    # JSON round-trip: counterexamples carry only non-default fields
    # ------------------------------------------------------------------
    def nondefault_fields(self) -> dict[str, Any]:
        """Fields differing from the minimal case (the shrink target)."""
        out: dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                out[field.name] = list(value) if isinstance(value, tuple) else value
        return out

    def to_json(self) -> dict[str, Any]:
        """Minimal JSON form (round-trips via :meth:`from_json`)."""
        return self.nondefault_fields()

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "VerifyCase":
        """Rebuild a case, filling every omitted field from the defaults."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown VerifyCase field(s): {', '.join(unknown)}")
        values = dict(data)
        if "weights" in values:
            values["weights"] = tuple(int(w) for w in values["weights"])
        return cls(**values).validated()


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One structured disagreement between implementation and oracle."""

    check: str
    expected: float
    got: float

    @property
    def delta(self) -> float:
        """Signed error, in the check's own unit (products, cycles, bytes)."""
        return self.got - self.expected

    def to_json(self) -> dict[str, Any]:
        """JSON-able record for counterexample files and ``--json`` output."""
        return {
            "check": self.check,
            "expected": self.expected,
            "got": self.got,
            "delta": self.delta,
        }

    def render(self) -> str:
        """One-line human rendering for the CLI report."""
        return (
            f"{self.check}: expected {self.expected!r}, got {self.got!r} "
            f"(delta {self.delta:+g})"
        )


@dataclasses.dataclass(frozen=True)
class DiffReport:
    """Outcome of one case: how many checks ran, which disagreed."""

    case: VerifyCase
    checks: int
    mismatches: tuple[Mismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self) -> dict[str, Any]:
        """JSON-able record (the fuzz counterexample payload)."""
        return {
            "case": self.case.to_json(),
            "checks": self.checks,
            "mismatches": [m.to_json() for m in self.mismatches],
        }


class _Collector:
    """Accumulates checks/mismatches while a case runs."""

    def __init__(self) -> None:
        self.checks = 0
        self.mismatches: list[Mismatch] = []

    def compare(self, check: str, expected: float, got: float) -> None:
        self.checks += 1
        if expected != got:
            self.mismatches.append(
                Mismatch(check=check, expected=float(expected), got=float(got))
            )


# ----------------------------------------------------------------------
# the three diff surfaces
# ----------------------------------------------------------------------
def _diff_kernel(case: VerifyCase, out: _Collector) -> None:
    """Scalar HubMac vs vectorised hub_mac_row, plus the latency oracle."""
    coding = Coding.RATE if case.coding == "rate" else Coding.TEMPORAL
    mac = HubMac(case.bits, ebt=case.ebt, coding=coding)
    scheme = (
        ComputeScheme.USYSTOLIC_RATE
        if coding is Coding.RATE
        else ComputeScheme.USYSTOLIC_TEMPORAL
    )
    out.compare(
        "kernel.mac_cycles",
        mac_latency_oracle(scheme, case.bits, case.ebt),
        mac.cycles,
    )
    weights = np.asarray(case.weights, dtype=np.int64)
    # The vectorised kernel is resolved through the module at call time so
    # mutation tests (and future fast paths) are what actually gets diffed.
    row = vectorized.hub_mac_row(
        case.ifm, weights, case.bits, ebt=case.ebt, coding=coding
    )
    scale = 1 << (case.bits - 1)
    for column, weight in enumerate(case.weights):
        scalar = mac.multiply(int(weight), case.ifm).product * scale
        out.compare(f"kernel.product[{column}]", scalar, float(row[column]))


def _diff_engine(case: VerifyCase, out: _Collector) -> None:
    """Schedule, traffic, trace and engine vs the analytical oracles."""
    params = case.gemm_params()
    array = case.array_config()
    memory = case.memory_config()

    latency = mac_latency_oracle(
        array.scheme, case.bits, case.ebt, act_frac=array.act_frac
    )
    out.compare("engine.mac_cycles", latency, array.mac_cycles)

    tiling = tile_gemm(params, array.rows, array.cols)
    cycles = compute_cycles_oracle(
        params, array.rows, array.cols, latency, skewed=array.scheme.has_skew
    )
    out.compare(
        "engine.schedule_cycles",
        cycles,
        schedule_layer(tiling, array.mac_cycles, array.geometry).compute_cycles,
    )
    result = simulate_layer(params, array, memory)
    out.compare("engine.compute_cycles", cycles, result.compute_cycles)

    oracle = traffic_oracle(params, array.rows, array.cols, case.bits, memory)
    traffic = profile_traffic(params, tiling, case.bits, memory)
    for key, expected in sorted(oracle.items()):
        variable, field = key.split(".", 1)
        out.compare(
            f"traffic.{key}", expected, getattr(traffic.variable(variable), field)
        )

    # The event trace must land on the no-SRAM demand totals byte for byte.
    demand = traffic_oracle(
        params, array.rows, array.cols, case.bits, case.memory_config().without_sram()
    )
    totals = tracegen.trace_totals(tracegen.generate_trace(params, array))
    for variable, op in (("ifm", "read"), ("weight", "read"), ("ofm", "read"), ("ofm", "write")):
        out.compare(
            f"trace.{variable}_{op}",
            demand[f"{variable}.dram_{op}"],
            totals.get((variable, op), 0),
        )


def _diff_functional(case: VerifyCase, out: _Collector) -> None:
    """Whole-array execution vs the scalar-MAC / exact-conv references."""
    params = case.gemm_params()
    array = case.array_config()
    rng = np.random.default_rng(case.seed)
    limit = 1 << (case.bits - 1)
    weight = rng.integers(-limit + 1, limit, size=(params.oc, params.wh, params.ww, params.ic))
    ifm = rng.integers(-limit + 1, limit, size=(params.ih, params.iw, params.ic))

    got = UsystolicArray(array).execute(params, weight, ifm)

    cols_mat = im2col_oracle(params, ifm)
    out.compare(
        "functional.im2col",
        0.0,
        float(np.abs(cols_mat - _im2col_impl(params, ifm)).max(initial=0)),
    )
    if array.scheme.is_exact:
        expected = conv_oracle(params, weight, ifm)
    else:
        # Independent scalar path: per-element HubMac products folded with
        # exact binary accumulation (the HUB fold-invariance guarantee).
        mac = HubMac(case.bits, ebt=case.ebt, coding=(
            Coding.RATE
            if array.scheme.spec.coding == "rate"
            else Coding.TEMPORAL
        ))
        scale = 1 << (case.bits - 1)
        wmat = weight.reshape(params.oc, params.window).T
        expected = np.zeros((cols_mat.shape[0], params.oc), dtype=np.float64)
        # Independent scalar oracle: deliberately not vectorised, so it
        # cannot share a bug with the kernel under test.
        for v in range(cols_mat.shape[0]):  # repro-lint: ignore[perf]
            for k in range(params.window):
                x = int(cols_mat[v, k])
                for c in range(params.oc):
                    expected[v, c] += mac.multiply(int(wmat[k, c]), x).product * scale
        expected = expected.reshape(params.oh, params.ow, params.oc)
    reported = 0
    for index in np.ndindex(expected.shape):
        out.checks += 1
        if expected[index] != got[index]:
            if reported < _MAX_ELEMENT_MISMATCHES:
                out.mismatches.append(
                    Mismatch(
                        check=f"functional.ofm{list(index)}",
                        expected=float(expected[index]),
                        got=float(got[index]),
                    )
                )
            reported += 1


def _compare_plane(
    out: _Collector,
    name: Callable[[tuple[int, ...]], str],
    expected: np.ndarray,
    got: np.ndarray,
) -> None:
    """Element-count-exact plane comparison with capped named reports."""
    out.checks += expected.size
    bad = np.argwhere(expected != got)
    for index in bad[:_MAX_ELEMENT_MISMATCHES]:
        key = tuple(int(i) for i in index)
        out.mismatches.append(
            Mismatch(
                check=name(key),
                expected=float(expected[key]),
                got=float(got[key]),
            )
        )
    # Overflow beyond the cap still counts as mismatches via ``checks``
    # bookkeeping in the report consumer; record the count explicitly.
    if len(bad) > _MAX_ELEMENT_MISMATCHES:
        out.compare(name(("...",)) + ".count", 0, len(bad))


def _diff_array(case: VerifyCase, out: _Collector) -> None:
    """The stepped full array vs schedule, trace, functional array.

    The three-way equivalence this pins::

        analytic schedule  ==  event trace  ==  stepped array
        (closed form)          (tracegen)       (arraysim planes)

    with psums additionally held byte-identical to the functional
    :class:`~repro.core.array.UsystolicArray` and, when the case is
    small, the wave stepper held to the exact per-cycle stepper.
    """
    params = case.gemm_params()
    array = case.array_config()
    rng = np.random.default_rng(case.seed)
    limit = 1 << (case.bits - 1)
    weight = rng.integers(
        -limit + 1, limit, size=(params.oc, params.wh, params.ww, params.ic)
    )
    ifm = rng.integers(-limit + 1, limit, size=(params.ih, params.iw, params.ic))

    latency = mac_latency_oracle(
        array.scheme, case.bits, case.ebt, act_frac=array.act_frac
    )
    tiling = tile_gemm(params, array.rows, array.cols)
    sched = schedule_layer(tiling, array.mac_cycles, array.geometry)
    cycles = compute_cycles_oracle(
        params, array.rows, array.cols, latency, skewed=array.scheme.has_skew
    )
    # Resolved through the module so mutation tests diff what runs.
    stepped = arraysim.simulate_array(
        params, array, weight, ifm, granularity="wave", collect_planes=True
    )

    out.compare("array.compute_cycles", cycles, stepped.compute_cycles)
    out.compare("array.schedule_cycles", sched.compute_cycles, stepped.compute_cycles)
    out.compare("array.pe_busy_cycles", sched.active_pe_mac_cycles, stepped.pe_busy_cycles)
    out.compare("array.num_folds", tiling.num_tiles, stepped.num_folds)

    # --- per-fold closed form and launch skew (names pe and fold) -----
    vectors = params.oh * params.ow
    offset = 0
    for fold, tile in zip(stepped.folds, tiling):
        ts = schedule_tile(tile, array.mac_cycles, array.geometry)
        tag = f"array.fold[{fold.index}]"
        out.compare(f"{tag}.start_cycle", offset, fold.start_cycle)
        out.compare(f"{tag}.preload_cycles", ts.preload_cycles, fold.preload_cycles)
        out.compare(
            f"{tag}.first_launch_cycle",
            offset + ts.preload_cycles,
            fold.first_launch_cycle,
        )
        out.compare(
            f"{tag}.last_mac_finish",
            offset + ts.total_cycles,
            fold.last_mac_finish,
        )
        # The launch stagger, written out independently of the geometry
        # object: one cycle per hop for skewed schemes, flat for DiP.
        if array.scheme.has_skew:
            skew = (
                np.arange(tile.rows, dtype=np.int64)[:, None]
                + np.arange(tile.cols, dtype=np.int64)[None, :]
            )
        else:
            skew = np.zeros((tile.rows, tile.cols), dtype=np.int64)
        _compare_plane(
            out,
            lambda pe, f=fold.index: f"array.launch[fold={f},pe={pe}]",
            offset + ts.preload_cycles + skew,
            stepped.launch_planes[fold.index],
        )
        offset += ts.preload_cycles + ts.stream_cycles

    # --- trace alignment: the event trace against the stepped folds ---
    events = tracegen.generate_trace(params, array)
    weight_cycles = [e.cycle for e in events if e.variable == "weight"]
    ifm_cycles = [e.cycle for e in events if e.variable == "ifm"]
    ofm_writes = [e.cycle for e in events if e.variable == "ofm" and e.op == "write"]
    out.compare("array.trace.weight_events", stepped.num_folds, len(weight_cycles))
    out.compare("array.trace.ifm_events", stepped.num_folds * vectors, len(ifm_cycles))
    if len(weight_cycles) == stepped.num_folds and len(ifm_cycles) == len(ofm_writes) == stepped.num_folds * vectors:
        for fold in stepped.folds:
            tag = f"array.trace[fold={fold.index}]"
            first = fold.index * vectors
            out.compare(f"{tag}.weight_read", fold.start_cycle, weight_cycles[fold.index])
            out.compare(f"{tag}.ifm_first", fold.first_launch_cycle, ifm_cycles[first])
            out.compare(
                f"{tag}.ifm_last",
                fold.first_launch_cycle + (vectors - 1) * array.mac_cycles,
                ifm_cycles[first + vectors - 1],
            )
            out.compare(
                f"{tag}.ofm_last_write",
                fold.first_launch_cycle + vectors * array.mac_cycles,
                ofm_writes[first + vectors - 1],
            )

    # --- psums byte-identical to the functional array -----------------
    ref = UsystolicArray(array).execute(params, weight, ifm).reshape(-1, params.oc)
    _compare_plane(
        out, lambda vc: f"array.psum[v={vc[0]},oc={vc[1]}]", ref, stepped.psums
    )
    if array.scheme.is_exact:
        exact = conv_oracle(params, weight, ifm).reshape(-1, params.oc)
        _compare_plane(
            out, lambda vc: f"array.conv[v={vc[0]},oc={vc[1]}]", exact, stepped.psums
        )

    # --- psum provenance: every output covered exactly once per fold --
    expected_prov = np.zeros_like(stepped.provenance)
    for tile in tiling:
        k_fold = tile.k_start // array.rows
        expected_prov[k_fold, :, tile.c_start : tile.c_start + tile.cols] += tile.rows
    out.compare(
        "array.provenance.per_fold",
        0.0,
        float(np.abs(stepped.provenance - expected_prov).max(initial=0)),
    )
    out.compare(
        "array.provenance.coverage",
        0.0,
        float(
            np.abs(stepped.provenance.sum(axis=0) - params.window).max(initial=0)
        ),
    )

    # --- granularity cross-check: wave held to the per-cycle stepper --
    if cycles <= _CYCLE_STEP_GUARD:
        clocked = arraysim.simulate_array(
            params, array, weight, ifm, granularity="cycle", collect_planes=True
        )
        out.compare("array.step.compute_cycles", clocked.compute_cycles, stepped.compute_cycles)
        out.compare("array.step.pe_busy_cycles", clocked.pe_busy_cycles, stepped.pe_busy_cycles)
        _compare_plane(
            out,
            lambda vc: f"array.step.psum[v={vc[0]},oc={vc[1]}]",
            clocked.psums,
            stepped.psums,
        )
        for fold in stepped.folds:
            _compare_plane(
                out,
                lambda pe, f=fold.index: f"array.step.launch[fold={f},pe={pe}]",
                clocked.launch_planes[fold.index],
                stepped.launch_planes[fold.index],
            )
            _compare_plane(
                out,
                lambda vc, f=fold.index: f"array.step.finish[fold={f},v={vc[0]},col={vc[1]}]",
                clocked.finish_planes[fold.index],
                stepped.finish_planes[fold.index],
            )


def run_case(case: VerifyCase) -> DiffReport:
    """Run every diff surface of one (validated) case."""
    case = case.validated()
    out = _Collector()
    if case.kind == "kernel":
        _diff_kernel(case, out)
    elif case.kind == "engine":
        _diff_engine(case, out)
    elif case.kind == "array":
        _diff_array(case, out)
    else:
        _diff_functional(case, out)
    return DiffReport(case=case, checks=out.checks, mismatches=tuple(out.mismatches))


def default_cases() -> list[VerifyCase]:
    """The curated deterministic grid ``python -m repro.verify diff`` runs.

    One representative per scheme/coding/memory corner; the fuzzer covers
    the space between them.
    """
    cases = [
        VerifyCase(kind="kernel", bits=8, ebt=6, ifm=-97, weights=(127, -128 + 1, 63, -1, 0)),
        VerifyCase(kind="kernel", bits=8, ifm=55, weights=(-77, 80, 127)),
        VerifyCase(kind="kernel", bits=6, coding="temporal", ifm=-21, weights=(31, -30, 7)),
        VerifyCase(kind="kernel", bits=2, ifm=1, weights=(-1, 1)),
    ]
    for scheme, ebt in (
        ("BP", None),
        ("BS", None),
        ("UR", 6),
        ("UT", None),
        ("UG", None),
        ("TU", None),
        ("TB", None),
        ("DP", None),
    ):
        for sram_kib in (None, 64):
            cases.append(
                VerifyCase(
                    kind="engine",
                    bits=8,
                    ebt=ebt,
                    scheme=scheme,
                    ih=8,
                    iw=8,
                    ic=4,
                    wh=3,
                    ww=3,
                    oc=10,
                    rows=4,
                    cols=3,
                    sram_kib=sram_kib,
                )
            )
    cases.append(
        VerifyCase(kind="engine", scheme="UR", bits=8, ebt=4, ih=7, iw=9, ic=2,
                   wh=2, ww=3, oc=5, stride=2, rows=3, cols=2, sram_kib=1)
    )
    # tubGEMM's expected-latency knob: three magnitudes, the cycle oracle
    # must track each one independently.
    for act_pct in (0, 25, 50):
        cases.append(
            VerifyCase(kind="engine", scheme="TB", bits=8, act_pct=act_pct,
                       ih=8, iw=8, ic=4, wh=3, ww=3, oc=10, rows=4, cols=3)
        )
    cases.extend(
        [
            VerifyCase(kind="functional", scheme="BP", bits=8, ih=5, iw=5, ic=2,
                       wh=2, ww=2, oc=3, rows=4, cols=3, seed=7),
            VerifyCase(kind="functional", scheme="UR", bits=5, ebt=4, ih=4, iw=4,
                       ic=1, wh=2, ww=2, oc=2, rows=2, cols=2, seed=11),
            VerifyCase(kind="functional", scheme="UT", bits=4, ih=3, iw=3, ic=1,
                       wh=2, ww=2, oc=2, rows=3, cols=2, seed=3),
            VerifyCase(kind="functional", scheme="TU", bits=6, ih=4, iw=4, ic=1,
                       wh=2, ww=2, oc=2, rows=2, cols=2, seed=19),
            VerifyCase(kind="functional", scheme="TB", bits=6, act_pct=50, ih=4,
                       iw=4, ic=1, wh=2, ww=2, oc=2, rows=2, cols=2, seed=23),
            VerifyCase(kind="functional", scheme="DP", bits=8, ih=5, iw=5, ic=2,
                       wh=2, ww=2, oc=3, rows=4, cols=3, seed=29),
        ]
    )
    cases.extend(
        [
            # The third oracle: one stepped-array case per scheme family,
            # sized so the per-cycle granularity cross-check also runs.
            VerifyCase(kind="array", scheme="BP", bits=8, ih=6, iw=6, ic=2,
                       wh=3, ww=3, oc=5, rows=4, cols=3, seed=5),
            VerifyCase(kind="array", scheme="UR", bits=5, ebt=3, ih=4, iw=4,
                       ic=2, wh=2, ww=2, oc=3, rows=3, cols=2, seed=13),
            VerifyCase(kind="array", scheme="UT", bits=4, ih=4, iw=4, ic=1,
                       wh=2, ww=2, oc=3, rows=2, cols=2, seed=17),
            VerifyCase(kind="array", scheme="BS", bits=5, ih=4, iw=4, ic=1,
                       wh=2, ww=2, oc=2, rows=2, cols=2, seed=4),
            VerifyCase(kind="array", scheme="UG", bits=4, ih=4, iw=4, ic=1,
                       wh=2, ww=2, oc=3, rows=2, cols=2, seed=3),
            VerifyCase(kind="array", scheme="TU", bits=4, ih=4, iw=4, ic=1,
                       wh=2, ww=2, oc=3, rows=2, cols=2, seed=31),
            VerifyCase(kind="array", scheme="TB", bits=5, act_pct=25, ih=4,
                       iw=4, ic=1, wh=2, ww=2, oc=2, rows=2, cols=2, seed=37),
            # DiP's skew-free schedule, proved by the stepped co-simulator:
            # flat launch planes, zero drain, per-cycle granularity held.
            VerifyCase(kind="array", scheme="DP", bits=8, ih=6, iw=6, ic=2,
                       wh=3, ww=3, oc=5, rows=4, cols=3, seed=41),
        ]
    )
    return [case.validated() for case in cases]
